(** Selectivity estimation, under the paper's standing independence
    assumption.

    Sargable range predicates read the column histogram; equi-joins use the
    classic [1 / max(d1, d2)] containment rule; non-sargable predicates get
    System-R-style default guesses keyed on their shape. *)

open Relax_sql.Types
module Predicate = Relax_sql.Predicate
module Expr = Relax_sql.Expr
module Histogram = Relax_catalog.Histogram

let clamp s = Float.max 1e-9 (Float.min 1.0 s)

(** Selectivity of a sargable range predicate. *)
let range env (r : Predicate.range) =
  match Env.col_stats_opt env r.rcol with
  | None -> 0.3 (* unknown column: a conservative guess *)
  | Some stats ->
    if Predicate.is_equality r then
      match r.lo with
      | Some b -> clamp (Histogram.selectivity_eq stats.hist (Value.to_float b.value))
      | None -> assert false
    else
      let lo =
        match r.lo with Some b -> Value.to_float b.value | None -> neg_infinity
      in
      let hi =
        match r.hi with Some b -> Value.to_float b.value | None -> infinity
      in
      clamp (Histogram.selectivity_range stats.hist ~lo ~hi)

(** Selectivity of an equi-join predicate: containment assumption. *)
let join env (j : Predicate.join) =
  let d c =
    match Env.col_stats_opt env c with Some s -> s.distinct | None -> 100.0
  in
  clamp (1.0 /. Float.max 1.0 (Float.max (d j.left) (d j.right)))

(** Equality-to-parameter selectivity (index nested-loop inner side). *)
let param_eq env c =
  match Env.col_stats_opt env c with
  | Some s -> clamp (1.0 /. Float.max 1.0 s.distinct)
  | None -> 0.01

(** Default guesses for non-sargable conjuncts, keyed on shape. *)
let rec other env (e : Expr.t) =
  match e with
  | Cmp (Eq, _, _) -> 0.05
  | Cmp (Neq, _, _) -> 0.9
  | Cmp ((Lt | Le | Gt | Ge), _, _) -> 1.0 /. 3.0
  | Like (_, pattern) ->
    if String.length pattern > 0 && pattern.[0] <> '%' then 0.05 else 0.15
  | In_list (_, vs) -> clamp (0.05 *. float_of_int (List.length vs))
  | And (a, b) -> clamp (other env a *. other env b)
  | Or (a, b) ->
    let sa = other env a and sb = other env b in
    clamp (sa +. sb -. (sa *. sb))
  | Not a -> clamp (1.0 -. other env a)
  | Col _ | Const _ | Neg _ | Bin _ -> 0.5

(** Combined selectivity of classified conjuncts over one relation (no
    joins). *)
let local env ~(ranges : Predicate.range list) ~(others : Expr.t list) =
  let s1 = List.fold_left (fun acc r -> acc *. range env r) 1.0 ranges in
  List.fold_left (fun acc e -> acc *. other env e) s1 others |> clamp
