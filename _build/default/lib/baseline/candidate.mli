(** Per-query candidate selection for the bottom-up baseline tuner: the
    classic AutoAdmin architecture the paper critiques, with its industrial
    shortcuts (capped key sequences, truncated per-query lists, views for
    whole query blocks only). *)

module Index = Relax_physical.Index
module View = Relax_physical.View
module Config = Relax_physical.Config

type t =
  | Cand_index of Index.t
  | Cand_view of View.t * float * Index.t list
      (** view, row estimate, its indexes (clustered first) *)

val pp : Format.formatter -> t -> unit
val id : t -> string
val size : Relax_catalog.Catalog.t -> t -> float
val add_to_config : Config.t -> t -> Config.t

val max_key_columns : int
val max_suffix_columns : int

val index_candidates : Relax_sql.Query.select_query -> Index.t list
(** Heuristic candidates guessed from query structure: equality, range,
    join, grouping and ordering columns, in the classic combinations, plus
    covering variants. *)

val view_candidates :
  Relax_optimizer.Env.t -> Relax_sql.Query.select_query -> t list
(** The full block and (when grouped) its SPJ core; sub-join views are not
    proposed — the shortcut the paper calls out. *)

val for_query :
  Relax_optimizer.Env.t ->
  with_views:bool ->
  Relax_sql.Query.select_query ->
  t list
