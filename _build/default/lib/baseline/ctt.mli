(** CTT: a bottom-up physical design tuner in the classic AutoAdmin
    architecture — the baseline the relaxation approach is compared
    against.  Candidate selection with atomic-configuration scoring, one
    eager merging pass, then Greedy(m,k) enumeration growing from the empty
    configuration. *)

module Query = Relax_sql.Query
module Config = Relax_physical.Config

type options = {
  space_budget : float;
  with_views : bool;
  base_config : Config.t;
  candidates_per_query : int;  (** top-k truncation per query *)
  greedy_seed_size : int;  (** the m of Greedy(m,k), capped at 2 *)
  max_steps : int;
}

val default_options : ?with_views:bool -> space_budget:float -> unit -> options

type result = {
  recommended : Config.t;
  recommended_cost : float;
  recommended_size : float;
  initial_cost : float;
  improvement : float;  (** percent vs the base configuration *)
  candidate_count : int;  (** candidates surviving selection + merging *)
  trace : (int * float) list;
      (** (cumulative what-if optimizer calls, best cost) after each greedy
          step: the Figure 3 series *)
  elapsed_s : float;
}

val tune : Relax_catalog.Catalog.t -> Query.workload -> options -> result
