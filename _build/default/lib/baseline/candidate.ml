(** Per-query candidate selection for the bottom-up baseline tuner.

    This reproduces the classic AutoAdmin architecture the paper critiques
    (step 1 of its Search Framework summary): candidates are {e guessed from
    the query structure} — columns in equality/range predicates, join
    columns, grouping and ordering columns — rather than derived from
    optimizer requests.  The usual industrial shortcuts are faithfully
    present: key sequences are capped, per-query candidate lists are
    truncated to the top [k] by estimated benefit, and candidate views are
    only built for whole query blocks. *)

open Relax_sql.Types
module Query = Relax_sql.Query
module Predicate = Relax_sql.Predicate
module Index = Relax_physical.Index
module View = Relax_physical.View
module Config = Relax_physical.Config
module O = Relax_optimizer

type t =
  | Cand_index of Index.t
  | Cand_view of View.t * float * Index.t list
      (** view, row estimate, indexes over it (clustered first) *)

let pp ppf = function
  | Cand_index i -> Index.pp ppf i
  | Cand_view (v, _, _) -> Fmt.string ppf (View.name v)

let id = function
  | Cand_index i -> Index.name i
  | Cand_view (v, _, _) -> View.name v

let size catalog = function
  | Cand_index i -> Config.index_bytes catalog (Config.of_indexes [ i ]) i
  | Cand_view (v, rows, idxs) ->
    let cfg =
      List.fold_left Config.add_index (Config.add_view Config.empty v ~rows) idxs
    in
    Config.bytes catalog cfg

(** Add a candidate's structures to a configuration. *)
let add_to_config config = function
  | Cand_index i ->
    if
      i.clustered
      && Config.clustered_on config (Index.owner i) <> None
    then config
    else Config.add_index config i
  | Cand_view (v, rows, idxs) ->
    if Config.mem_view config v then config
    else
      List.fold_left Config.add_index (Config.add_view config v ~rows) idxs

let max_key_columns = 3
let max_suffix_columns = 8

(* columns of [q] on table [t], by syntactic role *)
let table_roles (q : Query.spjg) (order_by : (column * order_dir) list) t =
  let on_t c = c.tbl = t in
  let eq_cols, range_cols =
    List.partition Predicate.is_equality
      (List.filter (fun (r : Predicate.range) -> on_t r.rcol) q.ranges)
    |> fun (e, r) ->
    ( List.map (fun (r : Predicate.range) -> r.rcol) e,
      List.map (fun (r : Predicate.range) -> r.rcol) r )
  in
  let join_cols =
    List.concat_map
      (fun (j : Predicate.join) ->
        List.filter on_t [ j.left; j.right ])
      q.joins
  in
  let group_cols = List.filter on_t q.group_by in
  let order_cols = List.filter on_t (List.map fst order_by) in
  let needed = Query.spjg_columns_of_table q t in
  (eq_cols, range_cols, join_cols, group_cols, order_cols, needed)

let dedup_cols cols =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun c ->
      if Hashtbl.mem seen c then false
      else begin
        Hashtbl.add seen c ();
        true
      end)
    cols

(** Heuristic index candidates for one query. *)
let index_candidates (sq : Query.select_query) : Index.t list =
  let q = sq.body in
  List.concat_map
    (fun t ->
      let eq, range, join, group, order, needed =
        table_roles q sq.order_by t
      in
      let cap l = List.filteri (fun i _ -> i < max_key_columns) (dedup_cols l) in
      let key_sets =
        [
          cap eq;
          cap (eq @ range);
          cap range;
          cap join;
          cap (join @ eq);
          cap group;
          cap order;
          cap (group @ order);
        ]
        |> List.filter (fun ks -> ks <> [])
      in
      (* single-column candidates for every sargable or join column *)
      let singles = List.map (fun c -> [ c ]) (dedup_cols (eq @ range @ join)) in
      let all_keys =
        List.sort_uniq compare (key_sets @ singles)
      in
      List.concat_map
        (fun keys ->
          let narrow = Index.make ~keys ~suffix:Column_set.empty () in
          let suffix = Column_set.diff needed (Column_set.of_list keys) in
          if
            Column_set.is_empty suffix
            || Column_set.cardinal suffix > max_suffix_columns
          then [ narrow ]
          else [ narrow; Index.make ~keys ~suffix () ])
        all_keys)
    q.tables

(** Heuristic view candidates for one query: the full block, and (when
    grouped) its SPJ core.  Sub-join views are {e not} proposed — the
    shortcut the paper calls out. *)
let view_candidates env (sq : Query.select_query) : t list =
  let q = sq.body in
  if List.length q.tables < 2 && q.group_by = [] then []
  else begin
    let mk (block : Query.spjg) =
      let v = View.make block in
      let rows = O.Cardinality.spjg env block in
      match View.outputs v with
      | [] -> None
      | (_, first) :: _ ->
        let keys =
          match
            List.filter_map (View.view_column_of_base v) block.group_by
          with
          | [] -> [ View.column_of_item v first ]
          | ks -> ks
        in
        let ci = Index.make ~clustered:true ~keys ~suffix:Column_set.empty () in
        Some (Cand_view (v, rows, [ ci ]))
    in
    let full = mk q in
    let spj_core =
      if q.group_by = [] then None
      else begin
        let select =
          Column_set.elements (Query.spjg_columns q)
          |> List.map (fun c -> Query.Item_col c)
        in
        mk (Query.make_spjg ~select ~tables:q.tables ~joins:q.joins
              ~ranges:q.ranges ~others:q.others ())
      end
    in
    List.filter_map Fun.id [ full; spj_core ]
  end

(** All candidates for one query (unscored). *)
let for_query env ~with_views (sq : Query.select_query) : t list =
  let idx = List.map (fun i -> Cand_index i) (index_candidates sq) in
  if with_views then idx @ view_candidates env sq else idx
