lib/baseline/ctt.ml: Array Candidate Float Hashtbl List Logs Relax_catalog Relax_optimizer Relax_physical Relax_sql Unix
