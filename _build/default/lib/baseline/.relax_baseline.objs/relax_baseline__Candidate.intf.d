lib/baseline/candidate.mli: Format Relax_catalog Relax_optimizer Relax_physical Relax_sql
