lib/baseline/candidate.ml: Column_set Fmt Fun Hashtbl List Relax_optimizer Relax_physical Relax_sql
