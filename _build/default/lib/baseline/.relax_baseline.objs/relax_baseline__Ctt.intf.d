lib/baseline/ctt.mli: Relax_catalog Relax_physical Relax_sql
