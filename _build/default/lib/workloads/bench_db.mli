(** "Bench": a synthetic mixed OLTP-style database in the spirit of the
    Wisconsin/AS3AP benchmarks — columns with controlled distinct counts
    (unique1, onepercent, tenpercent, ...) make selectivities easy to
    reason about.  Stands in for the paper's synthetic Bench database. *)

val catalog : ?scale:float -> ?seed:int -> unit -> Relax_catalog.Catalog.t

val join_graph :
  (Relax_sql.Types.column * Relax_sql.Types.column) list

val schema : ?scale:float -> ?seed:int -> unit -> Generator.schema

val tpch_schema : ?scale:float -> ?seed:int -> unit -> Generator.schema
(** The TPC-H analogue packaged as a generator schema. *)
