(** "DS1": a synthetic decision-support star schema (one wide fact table,
    five dimensions), standing in for the real customer database of the
    paper's Table 2.  Query workloads over it come from {!Generator}. *)

val catalog : ?scale:float -> ?seed:int -> unit -> Relax_catalog.Catalog.t

val join_graph :
  (Relax_sql.Types.column * Relax_sql.Types.column) list

val schema : ?scale:float -> ?seed:int -> unit -> Generator.schema
