(** "Bench": a synthetic mixed OLTP-style database in the spirit of the
    classic Wisconsin/AS3AP benchmark tables, standing in for the paper's
    synthetic "Bench" database (Table 2).

    Several medium-sized tables with columns of controlled distinct counts
    (unique1/unique2, onePercent, tenPercent, ...), which makes predicate
    selectivities easy to reason about in tests.  Workloads over it mix
    single-table scans/aggregations with a few two-table joins and a
    configurable update share. *)

module Catalog = Relax_catalog.Catalog
module D = Relax_catalog.Distribution
open Relax_sql.Types

let scale_rows scale n = max 10 (int_of_float (float_of_int n *. scale))

let bench_table name rows =
  Catalog.table name ~rows
    [
      Catalog.column "unique1" Int ~dist:D.Serial;
      Catalog.column "unique2" Int
        ~dist:(D.Uniform (0.0, float_of_int (rows - 1)));
      Catalog.column "onepercent" Int ~dist:(D.Uniform (0.0, 99.0));
      Catalog.column "tenpercent" Int ~dist:(D.Uniform (0.0, 9.0));
      Catalog.column "fiftypercent" Int ~dist:(D.Uniform (0.0, 1.0));
      Catalog.column "oddonepercent" Int ~dist:(D.Zipf { n = 100; skew = 0.7 });
      Catalog.column "stringu1" (Varchar 52);
      Catalog.column "value" Float ~dist:(D.Normal { mean = 500.0; stddev = 200.0 });
    ]

let catalog ?(scale = 0.05) ?(seed = 202) () : Catalog.t =
  let r = scale_rows scale in
  Catalog.create ~seed
    [
      bench_table "tenk1" (r 2_000_000);
      bench_table "tenk2" (r 2_000_000);
      bench_table "onek" (r 200_000);
      bench_table "hundred" (r 20_000);
    ]

let join_graph : (column * column) list =
  let c = Column.make in
  [
    (c "tenk1" "unique1", c "tenk2" "unique2");
    (c "tenk1" "onepercent", c "onek" "onepercent");
    (c "onek" "tenpercent", c "hundred" "tenpercent");
  ]

let schema ?scale ?seed () : Generator.schema =
  { catalog = catalog ?scale ?seed (); joins = join_graph }

(** The TPC-H analogue as a generator schema. *)
let tpch_schema ?scale ?seed () : Generator.schema =
  { catalog = Tpch.catalog ?scale ?seed (); joins = Tpch.join_graph }
