lib/workloads/tpch.ml: Column List Printf Relax_catalog Relax_sql
