lib/workloads/generator.mli: Relax_catalog Relax_sql
