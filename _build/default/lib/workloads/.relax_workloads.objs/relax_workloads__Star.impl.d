lib/workloads/star.ml: Column Generator Relax_catalog Relax_sql
