lib/workloads/star.mli: Generator Relax_catalog Relax_sql
