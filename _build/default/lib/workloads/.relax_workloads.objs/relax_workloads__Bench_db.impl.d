lib/workloads/bench_db.ml: Column Generator Relax_catalog Relax_sql Tpch
