lib/workloads/generator.ml: Column Float List Printf Relax_catalog Relax_sql Value
