lib/workloads/tpch.mli: Relax_catalog Relax_sql
