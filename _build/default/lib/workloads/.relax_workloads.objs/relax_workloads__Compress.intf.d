lib/workloads/compress.mli: Relax_sql
