lib/workloads/bench_db.mli: Generator Relax_catalog Relax_sql
