lib/workloads/compress.ml: Column Fmt Hashtbl List Printf Relax_sql String
