(** Workload compression: collapse statements that are identical up to
    constants into one weighted representative.

    Large production workloads repeat a small number of query templates
    with different parameter values; tuning time is roughly linear in
    workload size, so advisors in the AutoAdmin lineage compress first.
    Two statements share a {e signature} when they agree on everything but
    the constants in their sargable predicates: same tables, joins,
    predicate columns and shapes, select list, grouping and ordering. *)

open Relax_sql.Types
module Query = Relax_sql.Query
module Predicate = Relax_sql.Predicate
module Expr = Relax_sql.Expr

(* expression fingerprint with constants blanked *)
let rec expr_shape (e : Expr.t) : string =
  match e with
  | Col c -> "c:" ^ Column.to_string c
  | Const _ -> "k"
  | Neg e -> "n(" ^ expr_shape e ^ ")"
  | Not e -> "!(" ^ expr_shape e ^ ")"
  | Like (e, _) -> "l(" ^ expr_shape e ^ ")"
  | In_list (e, vs) ->
    Printf.sprintf "i(%s,%d)" (expr_shape e) (List.length vs)
  | Bin (o, a, b) ->
    Fmt.str "b(%a,%s,%s)" pp_arith_op o (expr_shape a) (expr_shape b)
  | Cmp (o, a, b) ->
    Fmt.str "p(%a,%s,%s)" pp_cmp_op o (expr_shape a) (expr_shape b)
  | And (a, b) -> "a(" ^ expr_shape a ^ "," ^ expr_shape b ^ ")"
  | Or (a, b) -> "o(" ^ expr_shape a ^ "," ^ expr_shape b ^ ")"

let range_shape (r : Predicate.range) =
  Printf.sprintf "%s%s%s%s" (Column.to_string r.rcol)
    (if r.lo <> None then "[" else "(")
    (if r.hi <> None then "]" else ")")
    (if Predicate.is_equality r then "=" else "")

let spjg_shape (q : Query.spjg) =
  String.concat "|"
    [
      String.concat "," q.tables;
      String.concat ","
        (List.map
           (fun (j : Predicate.join) ->
             Column.to_string j.left ^ "=" ^ Column.to_string j.right)
           q.joins);
      String.concat ","
        (List.sort String.compare (List.map range_shape q.ranges));
      String.concat "," (List.map expr_shape q.others);
      String.concat ","
        (List.map (fun it -> Fmt.str "%a" Query.pp_select_item it) q.select);
      String.concat "," (List.map Column.to_string q.group_by);
    ]

(** The template signature of a statement (constants blanked). *)
let signature (s : Query.statement) : string =
  match s with
  | Select q ->
    "S:" ^ spjg_shape q.body ^ "|"
    ^ String.concat ","
        (List.map (fun (c, _) -> Column.to_string c) q.order_by)
  | Dml (Update u) ->
    "U:" ^ u.table ^ "|"
    ^ String.concat "," (List.map fst u.assignments)
    ^ "|"
    ^ String.concat "," (List.sort String.compare (List.map range_shape u.ranges))
  | Dml (Insert i) -> "I:" ^ i.table
  | Dml (Delete d) ->
    "D:" ^ d.table ^ "|"
    ^ String.concat "," (List.sort String.compare (List.map range_shape d.ranges))

(** Compress a workload: one representative per signature (the first
    occurrence keeps its constants), with the cluster's weights summed. *)
let compress (w : Query.workload) : Query.workload =
  let order = ref [] in
  let clusters : (string, Query.entry ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (e : Query.entry) ->
      let s = signature e.stmt in
      match Hashtbl.find_opt clusters s with
      | Some rep -> rep := { !rep with weight = !rep.weight +. e.weight }
      | None ->
        let rep = ref e in
        Hashtbl.replace clusters s rep;
        order := rep :: !order)
    w;
  List.rev_map (fun r -> !r) !order

(** (statements before, statements after). *)
let compression_ratio (w : Query.workload) : int * int =
  (List.length w, List.length (compress w))
