(** A TPC-H-like database and 22-query workload.

    The schema mirrors TPC-H's eight tables with realistic column types,
    cardinality ratios and value distributions, at a configurable scale
    (rows = [scale] × the TPC-H SF-1 counts; the default 0.05 keeps tuning
    runs fast while preserving all cardinality ratios).

    The 22 queries are SPJG analogues of the TPC-H query set: the same
    tables, join shapes, predicate styles, groupings and orderings,
    restricted to the single-block dialect of the paper (no nested
    subqueries — where TPC-H uses one, the template keeps the outer block's
    shape).  What matters for physical design is which columns are sargable,
    joined, grouped and projected — those follow the originals closely. *)

module Catalog = Relax_catalog.Catalog
module D = Relax_catalog.Distribution
open Relax_sql.Types

let scale_rows scale n = max 10 (int_of_float (float_of_int n *. scale))

(** The TPC-H-like catalog at the given scale factor. *)
let catalog ?(scale = 0.05) ?(seed = 42) () : Catalog.t =
  let r = scale_rows scale in
  Catalog.create ~seed
    [
      Catalog.table "region" ~rows:5
        [
          Catalog.column "r_regionkey" Int ~dist:D.Serial;
          Catalog.column "r_name" (Char 25) ~dist:(D.Zipf { n = 5; skew = 0.1 });
        ];
      Catalog.table "nation" ~rows:25
        [
          Catalog.column "n_nationkey" Int ~dist:D.Serial;
          Catalog.column "n_name" (Char 25) ~dist:(D.Zipf { n = 25; skew = 0.1 });
          Catalog.column "n_regionkey" Int ~dist:(D.Uniform (0.0, 4.0));
        ];
      Catalog.table "supplier" ~rows:(r 10_000)
        [
          Catalog.column "s_suppkey" Int ~dist:D.Serial;
          Catalog.column "s_name" (Char 25);
          Catalog.column "s_nationkey" Int ~dist:(D.Uniform (0.0, 24.0));
          Catalog.column "s_acctbal" Float
            ~dist:(D.Normal { mean = 4500.0; stddev = 3000.0 });
          Catalog.column "s_comment" (Varchar 101);
        ];
      Catalog.table "customer" ~rows:(r 150_000)
        [
          Catalog.column "c_custkey" Int ~dist:D.Serial;
          Catalog.column "c_name" (Varchar 25);
          Catalog.column "c_nationkey" Int ~dist:(D.Uniform (0.0, 24.0));
          Catalog.column "c_acctbal" Float
            ~dist:(D.Normal { mean = 4500.0; stddev = 3000.0 });
          Catalog.column "c_mktsegment" (Char 10)
            ~dist:(D.Zipf { n = 5; skew = 0.2 });
          Catalog.column "c_comment" (Varchar 117);
        ];
      Catalog.table "part" ~rows:(r 200_000)
        [
          Catalog.column "p_partkey" Int ~dist:D.Serial;
          Catalog.column "p_name" (Varchar 55);
          Catalog.column "p_brand" (Char 10) ~dist:(D.Zipf { n = 25; skew = 0.3 });
          Catalog.column "p_type" (Varchar 25) ~dist:(D.Zipf { n = 150; skew = 0.3 });
          Catalog.column "p_size" Int ~dist:(D.Uniform (1.0, 50.0));
          Catalog.column "p_container" (Char 10)
            ~dist:(D.Zipf { n = 40; skew = 0.3 });
          Catalog.column "p_retailprice" Float
            ~dist:(D.Normal { mean = 1500.0; stddev = 400.0 });
        ];
      Catalog.table "partsupp" ~rows:(r 800_000)
        [
          Catalog.column "ps_partkey" Int
            ~dist:(D.Uniform (0.0, float_of_int (r 200_000 - 1)));
          Catalog.column "ps_suppkey" Int
            ~dist:(D.Uniform (0.0, float_of_int (r 10_000 - 1)));
          Catalog.column "ps_availqty" Int ~dist:(D.Uniform (1.0, 9999.0));
          Catalog.column "ps_supplycost" Float
            ~dist:(D.Normal { mean = 500.0; stddev = 250.0 });
        ];
      Catalog.table "orders" ~rows:(r 1_500_000)
        [
          Catalog.column "o_orderkey" Int ~dist:D.Serial;
          Catalog.column "o_custkey" Int
            ~dist:(D.Uniform (0.0, float_of_int (r 150_000 - 1)));
          Catalog.column "o_orderstatus" (Char 1) ~dist:(D.Zipf { n = 3; skew = 0.5 });
          Catalog.column "o_totalprice" Float
            ~dist:(D.Normal { mean = 150_000.0; stddev = 60_000.0 });
          Catalog.column "o_orderdate" Date ~dist:(D.Uniform (8035.0, 10590.0));
          Catalog.column "o_orderpriority" (Char 15)
            ~dist:(D.Zipf { n = 5; skew = 0.2 });
          Catalog.column "o_shippriority" Int ~dist:(D.Uniform (0.0, 1.0));
        ];
      Catalog.table "lineitem" ~rows:(r 6_000_000)
        [
          Catalog.column "l_orderkey" Int
            ~dist:(D.Uniform (0.0, float_of_int (r 1_500_000 - 1)));
          Catalog.column "l_partkey" Int
            ~dist:(D.Uniform (0.0, float_of_int (r 200_000 - 1)));
          Catalog.column "l_suppkey" Int
            ~dist:(D.Uniform (0.0, float_of_int (r 10_000 - 1)));
          Catalog.column "l_linenumber" Int ~dist:(D.Uniform (1.0, 7.0));
          Catalog.column "l_quantity" Int ~dist:(D.Uniform (1.0, 50.0));
          Catalog.column "l_extendedprice" Float
            ~dist:(D.Normal { mean = 38_000.0; stddev = 23_000.0 });
          Catalog.column "l_discount" Float ~dist:(D.Uniform (0.0, 0.1));
          Catalog.column "l_tax" Float ~dist:(D.Uniform (0.0, 0.08));
          Catalog.column "l_returnflag" (Char 1) ~dist:(D.Zipf { n = 3; skew = 0.3 });
          Catalog.column "l_linestatus" (Char 1) ~dist:(D.Zipf { n = 2; skew = 0.2 });
          Catalog.column "l_shipdate" Date ~dist:(D.Uniform (8035.0, 10710.0));
          Catalog.column "l_commitdate" Date ~dist:(D.Uniform (8035.0, 10710.0));
          Catalog.column "l_receiptdate" Date ~dist:(D.Uniform (8035.0, 10740.0));
          Catalog.column "l_shipmode" (Char 10) ~dist:(D.Zipf { n = 7; skew = 0.2 });
        ];
    ]

(** The foreign-key join graph, used by the random workload generators. *)
let join_graph : (column * column) list =
  let c = Column.make in
  [
    (c "nation" "n_regionkey", c "region" "r_regionkey");
    (c "supplier" "s_nationkey", c "nation" "n_nationkey");
    (c "customer" "c_nationkey", c "nation" "n_nationkey");
    (c "partsupp" "ps_partkey", c "part" "p_partkey");
    (c "partsupp" "ps_suppkey", c "supplier" "s_suppkey");
    (c "orders" "o_custkey", c "customer" "c_custkey");
    (c "lineitem" "l_orderkey", c "orders" "o_orderkey");
    (c "lineitem" "l_partkey", c "part" "p_partkey");
    (c "lineitem" "l_suppkey", c "supplier" "s_suppkey");
  ]

(* The 22 query templates.  SQL text keeps the original query numbers. *)
let query_texts : (string * string) list =
  [
    ( "Q1",
      "SELECT l_returnflag, l_linestatus, SUM(l_quantity), \
       SUM(l_extendedprice), COUNT(*) FROM lineitem WHERE l_shipdate <= \
       10470 GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, \
       l_linestatus" );
    ( "Q2",
      "SELECT supplier.s_acctbal, supplier.s_name, nation.n_name, \
       part.p_partkey FROM part, supplier, partsupp, nation, region WHERE \
       part.p_partkey = partsupp.ps_partkey AND supplier.s_suppkey = \
       partsupp.ps_suppkey AND supplier.s_nationkey = nation.n_nationkey \
       AND nation.n_regionkey = region.r_regionkey AND part.p_size = 15 AND \
       region.r_name = 2 ORDER BY supplier.s_acctbal DESC" );
    ( "Q3",
      "SELECT lineitem.l_orderkey, SUM(lineitem.l_extendedprice), \
       orders.o_orderdate, orders.o_shippriority FROM customer, orders, \
       lineitem WHERE customer.c_mktsegment = 1 AND customer.c_custkey = \
       orders.o_custkey AND lineitem.l_orderkey = orders.o_orderkey AND \
       orders.o_orderdate < 9210 AND lineitem.l_shipdate > 9210 GROUP BY \
       lineitem.l_orderkey, orders.o_orderdate, orders.o_shippriority \
       ORDER BY orders.o_orderdate" );
    ( "Q4",
      "SELECT orders.o_orderpriority, COUNT(*) FROM orders, lineitem WHERE \
       lineitem.l_orderkey = orders.o_orderkey AND orders.o_orderdate >= \
       9305 AND orders.o_orderdate < 9400 AND lineitem.l_commitdate < \
       lineitem.l_receiptdate GROUP BY orders.o_orderpriority ORDER BY \
       orders.o_orderpriority" );
    ( "Q5",
      "SELECT nation.n_name, SUM(lineitem.l_extendedprice) FROM customer, \
       orders, lineitem, supplier, nation, region WHERE customer.c_custkey \
       = orders.o_custkey AND lineitem.l_orderkey = orders.o_orderkey AND \
       lineitem.l_suppkey = supplier.s_suppkey AND customer.c_nationkey = \
       supplier.s_nationkey AND supplier.s_nationkey = nation.n_nationkey \
       AND nation.n_regionkey = region.r_regionkey AND region.r_name = \
       3 AND orders.o_orderdate >= 8766 AND orders.o_orderdate < 9131 \
       GROUP BY nation.n_name ORDER BY nation.n_name" );
    ( "Q6",
      "SELECT SUM(l_extendedprice) FROM lineitem WHERE l_shipdate >= 8766 \
       AND l_shipdate < 9131 AND l_discount >= 0.05 AND l_discount <= 0.07 \
       AND l_quantity < 24" );
    ( "Q7",
      "SELECT supplier.s_nationkey, customer.c_nationkey, \
       SUM(lineitem.l_extendedprice) FROM supplier, lineitem, orders, \
       customer WHERE supplier.s_suppkey = lineitem.l_suppkey AND \
       orders.o_orderkey = lineitem.l_orderkey AND customer.c_custkey = \
       orders.o_custkey AND lineitem.l_shipdate >= 9131 AND \
       lineitem.l_shipdate <= 9861 GROUP BY supplier.s_nationkey, \
       customer.c_nationkey" );
    ( "Q8",
      "SELECT orders.o_orderdate, SUM(lineitem.l_extendedprice) FROM part, \
       supplier, lineitem, orders, customer WHERE part.p_partkey = \
       lineitem.l_partkey AND supplier.s_suppkey = lineitem.l_suppkey AND \
       lineitem.l_orderkey = orders.o_orderkey AND orders.o_custkey = \
       customer.c_custkey AND orders.o_orderdate >= 9131 AND \
       orders.o_orderdate <= 9861 AND part.p_type = 100 GROUP BY \
       orders.o_orderdate" );
    ( "Q9",
      "SELECT nation.n_name, SUM(lineitem.l_extendedprice) FROM part, \
       supplier, lineitem, partsupp, nation WHERE supplier.s_suppkey = \
       lineitem.l_suppkey AND partsupp.ps_suppkey = lineitem.l_suppkey AND \
       partsupp.ps_partkey = lineitem.l_partkey AND part.p_partkey = \
       lineitem.l_partkey AND supplier.s_nationkey = nation.n_nationkey \
       AND part.p_size > 40 GROUP BY nation.n_name" );
    ( "Q10",
      "SELECT customer.c_custkey, customer.c_name, \
       SUM(lineitem.l_extendedprice), customer.c_acctbal FROM customer, \
       orders, lineitem WHERE customer.c_custkey = orders.o_custkey AND \
       lineitem.l_orderkey = orders.o_orderkey AND orders.o_orderdate >= \
       9374 AND orders.o_orderdate < 9466 AND lineitem.l_returnflag = 1 \
       GROUP BY customer.c_custkey, customer.c_name, customer.c_acctbal" );
    ( "Q11",
      "SELECT partsupp.ps_partkey, SUM(partsupp.ps_supplycost) FROM \
       partsupp, supplier, nation WHERE partsupp.ps_suppkey = \
       supplier.s_suppkey AND supplier.s_nationkey = nation.n_nationkey \
       AND nation.n_name = 7 GROUP BY partsupp.ps_partkey" );
    ( "Q12",
      "SELECT lineitem.l_shipmode, COUNT(*) FROM orders, lineitem WHERE \
       orders.o_orderkey = lineitem.l_orderkey AND lineitem.l_shipmode \
       IN (3, 5) AND lineitem.l_commitdate < lineitem.l_receiptdate AND \
       lineitem.l_shipdate < lineitem.l_commitdate AND \
       lineitem.l_receiptdate >= 9497 AND lineitem.l_receiptdate < 9862 \
       GROUP BY lineitem.l_shipmode ORDER BY lineitem.l_shipmode" );
    ( "Q13",
      "SELECT customer.c_custkey, COUNT(*) FROM customer, orders WHERE \
       customer.c_custkey = orders.o_custkey AND orders.o_orderpriority \
       <> 1 GROUP BY customer.c_custkey" );
    ( "Q14",
      "SELECT SUM(lineitem.l_extendedprice) FROM lineitem, part WHERE \
       lineitem.l_partkey = part.p_partkey AND lineitem.l_shipdate >= 9497 \
       AND lineitem.l_shipdate < 9527" );
    ( "Q15",
      "SELECT lineitem.l_suppkey, SUM(lineitem.l_extendedprice) FROM \
       lineitem WHERE lineitem.l_shipdate >= 9527 AND lineitem.l_shipdate \
       < 9617 GROUP BY lineitem.l_suppkey" );
    ( "Q16",
      "SELECT part.p_brand, part.p_type, part.p_size, \
       COUNT(partsupp.ps_suppkey) FROM partsupp, part WHERE part.p_partkey \
       = partsupp.ps_partkey AND part.p_brand <> 5 AND part.p_size IN (1, \
       14, 23, 45) GROUP BY part.p_brand, part.p_type, part.p_size ORDER \
       BY part.p_brand" );
    ( "Q17",
      "SELECT SUM(lineitem.l_extendedprice) FROM lineitem, part WHERE \
       part.p_partkey = lineitem.l_partkey AND part.p_brand = 3 AND \
       part.p_container = 12 AND lineitem.l_quantity < 3" );
    ( "Q18",
      "SELECT customer.c_name, customer.c_custkey, orders.o_orderkey, \
       orders.o_orderdate, orders.o_totalprice, SUM(lineitem.l_quantity) \
       FROM customer, orders, lineitem WHERE customer.c_custkey = \
       orders.o_custkey AND orders.o_orderkey = lineitem.l_orderkey AND \
       orders.o_totalprice > 400000 GROUP BY customer.c_name, \
       customer.c_custkey, orders.o_orderkey, orders.o_orderdate, \
       orders.o_totalprice ORDER BY orders.o_totalprice DESC" );
    ( "Q19",
      "SELECT SUM(lineitem.l_extendedprice) FROM lineitem, part WHERE \
       part.p_partkey = lineitem.l_partkey AND part.p_brand = 12 AND \
       lineitem.l_quantity >= 1 AND lineitem.l_quantity <= 11 AND \
       part.p_size >= 1 AND part.p_size <= 5 AND lineitem.l_shipmode IN \
       (1, 2)" );
    ( "Q20",
      "SELECT supplier.s_name, supplier.s_acctbal FROM supplier, nation, \
       partsupp WHERE supplier.s_nationkey = nation.n_nationkey AND \
       partsupp.ps_suppkey = supplier.s_suppkey AND nation.n_name = \
       4 AND partsupp.ps_availqty > 5000 ORDER BY supplier.s_name" );
    ( "Q21",
      "SELECT supplier.s_name, COUNT(*) FROM supplier, lineitem, orders, \
       nation WHERE supplier.s_suppkey = lineitem.l_suppkey AND \
       orders.o_orderkey = lineitem.l_orderkey AND orders.o_orderstatus = \
       1 AND lineitem.l_receiptdate > lineitem.l_commitdate AND \
       supplier.s_nationkey = nation.n_nationkey AND nation.n_name = \
       20 GROUP BY supplier.s_name ORDER BY supplier.s_name" );
    ( "Q22",
      "SELECT customer.c_nationkey, COUNT(*), SUM(customer.c_acctbal) FROM \
       customer WHERE c_acctbal > 7000 AND c_nationkey IN (13, 31, 23, 29, \
       30, 18, 17) GROUP BY customer.c_nationkey ORDER BY \
       customer.c_nationkey" );
  ]

(** The 22-query workload. *)
let workload () : Relax_sql.Query.workload =
  List.map
    (fun (qid, text) -> Relax_sql.Query.entry qid (Relax_sql.Parser.statement text))
    query_texts

(** A subset of the workload by query numbers (1-based). *)
let workload_subset numbers : Relax_sql.Query.workload =
  workload ()
  |> List.filteri (fun i _ -> List.mem (i + 1) numbers)

(** The dbgen-style refresh functions: RF1 inserts a batch of new orders
    with their lineitems; RF2 ages out old ones.  [scale] matches the
    catalog's; each pair touches ~0.1 % of the orders. *)
let refresh_workload ?(scale = 0.05) () : Relax_sql.Query.workload =
  let r = scale_rows scale in
  let k_orders = max 1 (r 1_500_000 / 1000) in
  let entry = Relax_sql.Query.entry in
  let stmt = Relax_sql.Parser.statement in
  [
    entry "RF1-orders" (stmt (Printf.sprintf "INSERT INTO orders ROWS %d" k_orders));
    entry "RF1-lineitem"
      (stmt (Printf.sprintf "INSERT INTO lineitem ROWS %d" (4 * k_orders)));
    entry "RF2-lineitem" (stmt "DELETE FROM lineitem WHERE l_shipdate < 8080");
    entry "RF2-orders" (stmt "DELETE FROM orders WHERE o_orderdate < 8080");
  ]
