(** Workload compression: collapse statements identical up to constants
    into one weighted representative (the scalability trick of the
    AutoAdmin lineage — tuning time is roughly linear in workload size). *)

val signature : Relax_sql.Query.statement -> string
(** The template signature: everything but the constants. *)

val compress : Relax_sql.Query.workload -> Relax_sql.Query.workload
(** One representative per signature (first occurrence keeps its
    constants), weights summed.  Order of first occurrences preserved. *)

val compression_ratio : Relax_sql.Query.workload -> int * int
(** (statements before, after). *)
