(** Random workload generation over any schema with a foreign-key join
    graph.

    The generator produces single-block SPJG queries: a random connected
    walk over the join graph picks the FROM set; range and equality
    predicates draw constants from the columns' own distributions (via
    quantiles, so selectivities are controlled); group-bys prefer
    low-cardinality columns; a configurable fraction of statements are
    UPDATE / DELETE / INSERT.  All randomness flows through an explicit
    {!Relax_catalog.Rng.t}, so workloads are reproducible. *)

open Relax_sql.Types
module Query = Relax_sql.Query
module Predicate = Relax_sql.Predicate
module Expr = Relax_sql.Expr
module Catalog = Relax_catalog.Catalog
module Rng = Relax_catalog.Rng
module D = Relax_catalog.Distribution

type profile = {
  min_tables : int;
  max_tables : int;
  ranges_per_query : int;  (** expected number of range predicates *)
  eq_fraction : float;  (** fraction of ranges that are equalities *)
  group_by_prob : float;
  order_by_prob : float;
  other_pred_prob : float;  (** chance of one non-sargable conjunct *)
  update_fraction : float;  (** fraction of DML statements *)
  avg_selectivity : float;  (** target width of range predicates *)
}

let default_profile =
  {
    min_tables = 1;
    max_tables = 4;
    ranges_per_query = 2;
    eq_fraction = 0.4;
    group_by_prob = 0.4;
    order_by_prob = 0.3;
    other_pred_prob = 0.2;
    update_fraction = 0.0;
    avg_selectivity = 0.1;
  }

(** A schema description for the generator. *)
type schema = {
  catalog : Catalog.t;
  joins : (column * column) list;  (** the FK join graph *)
}

(* pick a value for column [c] at quantile [q] *)
let value_at schema (c : column) q : value =
  let td = Catalog.table_exn schema.catalog c.tbl in
  let cd = List.find (fun (d : Catalog.column_def) -> d.cname = c.col) td.cols in
  let v = D.quantile cd.dist ~rows:td.rows q in
  match cd.ctype with
  | Int | Char _ | Varchar _ -> VInt (int_of_float v)
  | Date -> VDate (int_of_float v)
  | Float -> VFloat v

let columns_of_table schema t =
  Catalog.columns_of schema.catalog t

(* low-distinct columns are natural group-by keys *)
let groupable_columns schema t =
  List.filter
    (fun c ->
      let s = Catalog.col_stats schema.catalog c in
      s.distinct <= 1000.0)
    (columns_of_table schema t)

(* numeric columns can be aggregated *)
let aggregable_columns schema t =
  List.filter
    (fun c ->
      match (Catalog.col_stats schema.catalog c).stype with
      | Int | Float -> true
      | Date | Char _ | Varchar _ -> false)
    (columns_of_table schema t)

(* random connected table set via a walk on the join graph *)
let pick_tables schema rng ~n =
  let all = Catalog.table_names schema.catalog in
  let start = Rng.choose rng all in
  let rec grow tables joins =
    if List.length tables >= n then (tables, joins)
    else begin
      let frontier =
        List.filter
          (fun (a, b) ->
            (List.mem a.tbl tables && not (List.mem b.tbl tables))
            || (List.mem b.tbl tables && not (List.mem a.tbl tables)))
          schema.joins
      in
      match frontier with
      | [] -> (tables, joins)
      | _ ->
        let (a, b) = Rng.choose rng frontier in
        let newt = if List.mem a.tbl tables then b.tbl else a.tbl in
        grow (newt :: tables) (Predicate.make_join a b :: joins)
    end
  in
  grow [ start ] []

let range_for schema rng (c : column) ~eq ~avg_sel : Predicate.range =
  if eq then Predicate.range_eq c (value_at schema c (Rng.float rng))
  else begin
    let width = Float.min 0.9 (avg_sel *. (0.5 +. Rng.float rng)) in
    let lo = Rng.float rng *. (1.0 -. width) in
    let hi = lo +. width in
    let vlo = value_at schema c lo in
    let vhi = value_at schema c hi in
    (* integer-valued columns can round both endpoints to the same value,
       which would silently turn the range into an equality (a different
       template); keep non-equality ranges strict *)
    let vhi =
      if Value.equal vlo vhi then
        match vhi with
        | VInt i -> VInt (i + 1)
        | VDate d -> VDate (d + 1)
        | VFloat f -> VFloat (f +. 1.0)
        | VString s -> VString (s ^ "z")
      else vhi
    in
    Predicate.range ~lo:(Predicate.bound vlo) ~hi:(Predicate.bound vhi) c
  end

(** One random select query. *)
let random_select schema rng (p : profile) : Query.select_query =
  let n = Rng.int_range rng p.min_tables p.max_tables in
  let tables, joins = pick_tables schema rng ~n in
  let all_cols = List.concat_map (columns_of_table schema) tables in
  (* ranges *)
  let n_ranges =
    let base = p.ranges_per_query in
    max 1 (Rng.int_range rng (max 0 (base - 1)) (base + 1))
  in
  let range_cols = Rng.sample rng n_ranges all_cols in
  let ranges =
    List.map
      (fun c ->
        range_for schema rng c
          ~eq:(Rng.bernoulli rng p.eq_fraction)
          ~avg_sel:p.avg_selectivity)
      range_cols
  in
  (* an optional non-sargable conjunct over two numeric columns *)
  let others =
    if Rng.bernoulli rng p.other_pred_prob then begin
      let nums = List.concat_map (aggregable_columns schema) tables in
      match Rng.sample rng 2 nums with
      | [ a; b ] when a.tbl = b.tbl ->
        [ Expr.Cmp (Lt, Col a, Bin (Add, Col b, Const (VInt 1))) ]
      | _ -> []
    end
    else []
  in
  (* grouping and outputs *)
  let grouped = Rng.bernoulli rng p.group_by_prob in
  if grouped then begin
    let gcands = List.concat_map (groupable_columns schema) tables in
    let keys =
      match Rng.sample rng (Rng.int_range rng 1 2) gcands with
      | [] -> []
      | ks -> ks
    in
    if keys = [] then
      (* no groupable column: fall back to a plain select *)
      let sel_cols = Rng.sample rng (Rng.int_range rng 1 4) all_cols in
      let body =
        Query.make_spjg
          ~select:(List.map (fun c -> Query.Item_col c) sel_cols)
          ~tables ~joins ~ranges ~others ()
      in
      { Query.body; order_by = [] }
    else begin
      let aggs =
        match Rng.sample rng (Rng.int_range rng 1 2) (List.concat_map (aggregable_columns schema) tables) with
        | [] -> [ Query.Item_agg (Count, None) ]
        | cs ->
          Query.Item_agg (Count, None)
          :: List.map (fun c -> Query.Item_agg ((if Rng.bernoulli rng 0.5 then Query.Sum else Query.Max), Some c)) cs
      in
      let select = List.map (fun c -> Query.Item_col c) keys @ aggs in
      let body =
        Query.make_spjg ~select ~tables ~joins ~ranges ~others ~group_by:keys ()
      in
      let order_by =
        if Rng.bernoulli rng p.order_by_prob then
          [ (List.hd keys, Asc) ]
        else []
      in
      { Query.body; order_by }
    end
  end
  else begin
    let sel_cols =
      match Rng.sample rng (Rng.int_range rng 1 4) all_cols with
      | [] -> [ List.hd all_cols ]
      | cs -> cs
    in
    let select = List.map (fun c -> Query.Item_col c) sel_cols in
    let body = Query.make_spjg ~select ~tables ~joins ~ranges ~others () in
    let order_by =
      if Rng.bernoulli rng p.order_by_prob then
        [ (Rng.choose rng sel_cols, Asc) ]
      else []
    in
    { Query.body; order_by }
  end

(** One random update statement over a single table. *)
let random_dml schema rng (p : profile) : Query.dml =
  let all = Catalog.table_names schema.catalog in
  let table = Rng.choose rng all in
  let cols = columns_of_table schema table in
  let where_col = Rng.choose rng cols in
  let ranges =
    [ range_for schema rng where_col ~eq:false ~avg_sel:(p.avg_selectivity /. 2.0) ]
  in
  match Rng.int rng 4 with
  | 0 -> Query.Delete { table; ranges; others = [] }
  | 1 ->
    let rows = Rng.int_range rng 10 1000 in
    Query.Insert { table; rows }
  | _ ->
    let target =
      match
        List.filter
          (fun (c : column) -> not (Column.equal c where_col))
          (aggregable_columns schema table)
      with
      | [] -> Rng.choose rng cols
      | cs -> Rng.choose rng cs
    in
    Query.Update
      {
        table;
        assignments = [ (target.col, Expr.Bin (Add, Col target, Const (VInt 1))) ];
        ranges;
        others = [];
      }

(** Re-draw the constants of a statement's range predicates: the same
    template with new parameters.  Repeating this builds the
    template-heavy workloads that {!Compress} collapses. *)
let reparameterize ?(avg_sel = 0.1) (schema : schema) rng
    (w : Query.workload) : Query.workload =
  let fresh_range (r : Predicate.range) =
    range_for schema rng r.rcol ~eq:(Predicate.is_equality r) ~avg_sel
  in
  let fresh_stmt (s : Query.statement) : Query.statement =
    match s with
    | Select q ->
      let body =
        Query.make_spjg ~select:q.body.select ~tables:q.body.tables
          ~joins:q.body.joins
          ~ranges:(List.map fresh_range q.body.ranges)
          ~others:q.body.others ~group_by:q.body.group_by ()
      in
      Select { q with body }
    | Dml (Update u) ->
      Dml (Update { u with ranges = List.map fresh_range u.ranges })
    | Dml (Delete d) ->
      Dml (Delete { d with ranges = List.map fresh_range d.ranges })
    | Dml (Insert _) as s -> s
  in
  List.map (fun (e : Query.entry) -> { e with stmt = fresh_stmt e.stmt }) w

(** A reproducible random workload of [n] statements. *)
let workload ?(seed = 1) ?(profile = default_profile) (schema : schema) ~n :
    Query.workload =
  let rng = Rng.create seed in
  List.init n (fun i ->
      let qid = Printf.sprintf "g%d" (i + 1) in
      if Rng.bernoulli rng profile.update_fraction then
        Query.entry qid (Query.Dml (random_dml schema rng profile))
      else Query.entry qid (Query.Select (random_select schema rng profile)))
