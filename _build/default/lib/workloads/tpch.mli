(** A TPC-H-like database and 22-query workload.

    The schema mirrors TPC-H's eight tables with realistic types,
    cardinality ratios and distributions; [scale] multiplies the SF-1 row
    counts (default 0.05).  The queries are SPJG analogues of the TPC-H
    set: same tables, join shapes, predicate styles, groupings and
    orderings, restricted to the paper's single-block dialect. *)

val catalog : ?scale:float -> ?seed:int -> unit -> Relax_catalog.Catalog.t

val join_graph :
  (Relax_sql.Types.column * Relax_sql.Types.column) list
(** The foreign-key join graph, for the random generators. *)

val query_texts : (string * string) list
(** The 22 templates as (id, SQL). *)

val workload : unit -> Relax_sql.Query.workload
(** All 22 queries, parsed. *)

val workload_subset : int list -> Relax_sql.Query.workload
(** Subset by 1-based query number. *)

val refresh_workload : ?scale:float -> unit -> Relax_sql.Query.workload
(** The dbgen-style refresh functions RF1/RF2 (batch order/lineitem inserts
    and age-out deletes), for update-mixed TPC-H tuning. *)
