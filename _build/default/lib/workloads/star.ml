(** "DS1": a synthetic decision-support star-schema database.

    One wide fact table and six dimensions of varying size, standing in for
    the real customer database DS1 of the paper's evaluation (Table 2).
    Queries over it are generated with {!Generator}. *)

module Catalog = Relax_catalog.Catalog
module D = Relax_catalog.Distribution
open Relax_sql.Types

let scale_rows scale n = max 10 (int_of_float (float_of_int n *. scale))

let catalog ?(scale = 0.05) ?(seed = 101) () : Catalog.t =
  let r = scale_rows scale in
  let dim name rows extra =
    Catalog.table name ~rows
      ([
         Catalog.column (name ^ "_key") Int ~dist:D.Serial;
         Catalog.column (name ^ "_name") (Varchar 30);
         Catalog.column (name ^ "_class") Int
           ~dist:(D.Zipf { n = 20; skew = 0.4 });
       ]
      @ extra)
  in
  Catalog.create ~seed
    [
      dim "product" (r 30_000)
        [
          Catalog.column "product_price" Float
            ~dist:(D.Normal { mean = 80.0; stddev = 40.0 });
          Catalog.column "product_category" Int
            ~dist:(D.Uniform (0.0, 49.0));
        ];
      dim "store" (r 1_000)
        [ Catalog.column "store_region" Int ~dist:(D.Uniform (0.0, 19.0)) ];
      dim "customer_d" (r 100_000)
        [
          Catalog.column "customer_d_segment" Int
            ~dist:(D.Zipf { n = 8; skew = 0.4 });
          Catalog.column "customer_d_income" Float
            ~dist:(D.Normal { mean = 60_000.0; stddev = 25_000.0 });
        ];
      dim "promotion" (r 2_000) [];
      dim "time_d" 2_555
        [
          Catalog.column "time_d_month" Int ~dist:(D.Uniform (1.0, 12.0));
          Catalog.column "time_d_year" Int ~dist:(D.Uniform (1998.0, 2004.0));
        ];
      Catalog.table "sales" ~rows:(r 5_000_000)
        [
          Catalog.column "sales_product" Int
            ~dist:(D.Uniform (0.0, float_of_int (r 30_000 - 1)));
          Catalog.column "sales_store" Int
            ~dist:(D.Uniform (0.0, float_of_int (r 1_000 - 1)));
          Catalog.column "sales_customer" Int
            ~dist:(D.Uniform (0.0, float_of_int (r 100_000 - 1)));
          Catalog.column "sales_promo" Int
            ~dist:(D.Uniform (0.0, float_of_int (r 2_000 - 1)));
          Catalog.column "sales_time" Int ~dist:(D.Uniform (0.0, 2554.0));
          Catalog.column "sales_qty" Int ~dist:(D.Uniform (1.0, 100.0));
          Catalog.column "sales_amount" Float
            ~dist:(D.Normal { mean = 250.0; stddev = 120.0 });
          Catalog.column "sales_cost" Float
            ~dist:(D.Normal { mean = 180.0; stddev = 90.0 });
        ];
    ]

let join_graph : (column * column) list =
  let c = Column.make in
  [
    (c "sales" "sales_product", c "product" "product_key");
    (c "sales" "sales_store", c "store" "store_key");
    (c "sales" "sales_customer", c "customer_d" "customer_d_key");
    (c "sales" "sales_promo", c "promotion" "promotion_key");
    (c "sales" "sales_time", c "time_d" "time_d_key");
  ]

let schema ?scale ?seed () : Generator.schema =
  { catalog = catalog ?scale ?seed (); joins = join_graph }
