(** Random workload generation over any schema with a foreign-key join
    graph.  All randomness flows through a seeded generator: workloads are
    reproducible. *)

module Query = Relax_sql.Query

type profile = {
  min_tables : int;
  max_tables : int;
  ranges_per_query : int;  (** expected range predicates per query *)
  eq_fraction : float;  (** fraction of ranges that are equalities *)
  group_by_prob : float;
  order_by_prob : float;
  other_pred_prob : float;  (** chance of a non-sargable conjunct *)
  update_fraction : float;  (** fraction of DML statements *)
  avg_selectivity : float;  (** target width of range predicates *)
}

val default_profile : profile

(** A schema description for the generator. *)
type schema = {
  catalog : Relax_catalog.Catalog.t;
  joins : (Relax_sql.Types.column * Relax_sql.Types.column) list;
      (** the FK join graph *)
}

val random_select : schema -> Relax_catalog.Rng.t -> profile -> Query.select_query
(** One random SPJG query: connected walk over the join graph, predicate
    constants drawn from the columns' own distributions, grouping over
    low-cardinality columns. *)

val random_dml : schema -> Relax_catalog.Rng.t -> profile -> Query.dml

val reparameterize :
  ?avg_sel:float ->
  schema ->
  Relax_catalog.Rng.t ->
  Query.workload ->
  Query.workload
(** Re-draw the constants of every range predicate: the same templates with
    new parameters (what repeated production workloads look like). *)

val workload : ?seed:int -> ?profile:profile -> schema -> n:int -> Query.workload
(** A reproducible random workload of [n] statements, ids [g1], [g2], ... *)
