(** Unit and property tests for the SQL layer: expressions, predicate
    classification, range algebra, parser round-trips. *)

open Relax_sql.Types
module Expr = Relax_sql.Expr
module Predicate = Relax_sql.Predicate
module Query = Relax_sql.Query
module Parser = Relax_sql.Parser
module Pretty = Relax_sql.Pretty

let c = Column.make

let test_classify_paper_example () =
  (* the example of the Assumptions section:
     R.x=S.y AND S.y=T.z (joins); R.a>5 AND R.a<50 AND R.b>5 (ranges);
     (R.a<R.b OR R.c<8) AND R.a*R.b=5 (others) *)
  let stmt =
    Parser.statement
      "SELECT R.a, S.b, T.cc FROM R, S, T WHERE R.x = S.y AND S.y = T.z AND \
       R.a > 5 AND R.a < 50 AND R.b > 5 AND (R.a < R.b OR R.cc < 8) AND R.a \
       * R.b = 5"
  in
  match stmt with
  | Query.Select q ->
    Alcotest.(check int) "joins" 2 (List.length q.body.joins);
    (* R.a>5 and R.a<50 collapse into one range on R.a, plus R.b>5 *)
    Alcotest.(check int) "ranges" 2 (List.length q.body.ranges);
    Alcotest.(check int) "others" 2 (List.length q.body.others);
    let ra =
      List.find
        (fun (r : Predicate.range) -> Column.equal r.rcol (c "R" "a"))
        q.body.ranges
    in
    Alcotest.(check bool) "R.a has both bounds" true
      (ra.lo <> None && ra.hi <> None)
  | _ -> Alcotest.fail "expected select"

let test_range_intersect () =
  let r1 = Predicate.range ~lo:(Predicate.bound (VInt 5)) (c "r" "a") in
  let r2 = Predicate.range ~hi:(Predicate.bound (VInt 10)) (c "r" "a") in
  let i = Predicate.range_intersect r1 r2 in
  Alcotest.(check bool) "bounded both sides" true (i.lo <> None && i.hi <> None)

let test_range_union_unbounded () =
  (* merging R.a < 10 and R.a > 5 must become unbounded (paper §3.1.2) *)
  let r1 = Predicate.range ~hi:(Predicate.bound (VInt 10)) (c "r" "a") in
  let r2 = Predicate.range ~lo:(Predicate.bound (VInt 5)) (c "r" "a") in
  let u = Predicate.range_union r1 r2 in
  Alcotest.(check bool) "unbounded" true (Predicate.is_unbounded u)

let test_range_implies () =
  let tight =
    Predicate.range
      ~lo:(Predicate.bound (VInt 10))
      ~hi:(Predicate.bound (VInt 20))
      (c "r" "a")
  in
  let loose = Predicate.range ~lo:(Predicate.bound (VInt 0)) (c "r" "a") in
  Alcotest.(check bool) "tight implies loose" true
    (Predicate.implies ~by:tight loose);
  Alcotest.(check bool) "loose does not imply tight" false
    (Predicate.implies ~by:loose tight)

let test_equality_range () =
  let r = Predicate.range_eq (c "r" "a") (VInt 7) in
  Alcotest.(check bool) "is_equality" true (Predicate.is_equality r)

let test_equiv_classes () =
  let joins =
    [
      Predicate.make_join (c "r" "x") (c "s" "y");
      Predicate.make_join (c "s" "y") (c "t" "z");
    ]
  in
  let equiv = Query.column_equiv joins in
  Alcotest.(check bool) "transitive" true (equiv (c "r" "x") (c "t" "z"));
  Alcotest.(check bool) "unrelated" false (equiv (c "r" "x") (c "r" "a"))

let test_parse_update () =
  match
    Parser.statement "UPDATE r SET a = b + 1, cc = cc * cc + 5 WHERE a < 10 AND d < 20"
  with
  | Query.Dml (Query.Update u) ->
    Alcotest.(check int) "assignments" 2 (List.length u.assignments);
    Alcotest.(check int) "ranges" 2 (List.length u.ranges)
  | _ -> Alcotest.fail "expected update"

let test_split_update () =
  let d =
    match Parser.statement "UPDATE r SET a = b + 1, cc = cc * cc + 5 WHERE a < 10 AND d < 20" with
    | Query.Dml d -> d
    | _ -> Alcotest.fail "expected dml"
  in
  match Query.split_update d with
  | Some sel, _ ->
    (* select part reads b and cc, under the same WHERE *)
    Alcotest.(check int) "select tables" 1 (List.length sel.body.tables);
    Alcotest.(check int) "select ranges" 2 (List.length sel.body.ranges);
    let cols = Query.spjg_columns sel.body in
    Alcotest.(check bool) "reads b" true (Column_set.mem (c "r" "b") cols);
    let updated = Query.updated_columns d in
    Alcotest.(check bool) "updates a" true (Column_set.mem (c "r" "a") updated);
    Alcotest.(check bool) "does not update b" false
      (Column_set.mem (c "r" "b") updated)
  | None, _ -> Alcotest.fail "expected a select component"

let test_parse_group_order () =
  match
    Parser.statement
      "SELECT r.a, SUM(r.b) FROM r WHERE r.d = 3 GROUP BY r.a ORDER BY r.a DESC"
  with
  | Query.Select q ->
    Alcotest.(check int) "group" 1 (List.length q.body.group_by);
    Alcotest.(check int) "order" 1 (List.length q.order_by);
    Alcotest.(check bool) "agg" true (Query.has_aggregates q.body)
  | _ -> Alcotest.fail "expected select"

let test_parse_errors () =
  let bad = [ "SELECT"; "SELECT a FROM"; "UPDATE r a = 3"; "FROB x" ] in
  List.iter
    (fun s ->
      match Parser.statement s with
      | exception Parser.Parse_error _ -> ()
      | exception Relax_sql.Lexer.Lex_error _ -> ()
      | _ -> Alcotest.failf "expected parse error for %S" s)
    bad

let test_roundtrip_examples () =
  let stmts =
    [
      "SELECT r.a, r.b FROM r WHERE r.a > 5 AND r.b <= 3";
      "SELECT r.a, SUM(s.x) FROM r, s WHERE r.sid = s.id GROUP BY r.a";
      "SELECT r.a FROM r ORDER BY r.a DESC";
      "DELETE FROM r WHERE a < 5";
      "INSERT INTO r ROWS 100";
      "UPDATE r SET a = 1 WHERE b = 2";
    ]
  in
  List.iter
    (fun s ->
      let st1 = Parser.statement s in
      let printed = Pretty.statement_to_string st1 in
      let st2 =
        try Parser.statement printed
        with e ->
          Alcotest.failf "re-parse of %S failed: %s" printed
            (Printexc.to_string e)
      in
      let printed2 = Pretty.statement_to_string st2 in
      Alcotest.(check string) ("round-trip " ^ s) printed printed2)
    stmts

(* --- property tests ------------------------------------------------- *)

let gen_value =
  QCheck.Gen.(
    oneof [ map (fun i -> VInt i) (int_range (-100) 100);
            map (fun f -> VFloat (Float.round (f *. 100.) /. 100.)) (float_range (-50.) 50.) ])

let gen_bound = QCheck.Gen.(map (fun v -> Predicate.bound v) gen_value)

let gen_range =
  QCheck.Gen.(
    let col = map (fun i -> c "r" (Printf.sprintf "c%d" i)) (int_range 0 2) in
    map3
      (fun col lo hi -> { Predicate.rcol = col; lo; hi })
      col (option gen_bound) (option gen_bound))

let arb_range = QCheck.make gen_range

let prop_union_weaker =
  QCheck.Test.make ~name:"range_union is implied by both inputs" ~count:500
    (QCheck.pair arb_range arb_range) (fun (r1, r2) ->
      let r2 = { r2 with rcol = r1.Predicate.rcol } in
      let u = Predicate.range_union r1 r2 in
      Predicate.implies ~by:r1 u && Predicate.implies ~by:r2 u)

let prop_intersect_stronger =
  QCheck.Test.make ~name:"range_intersect implies both inputs" ~count:500
    (QCheck.pair arb_range arb_range) (fun (r1, r2) ->
      let r2 = { r2 with rcol = r1.Predicate.rcol } in
      let i = Predicate.range_intersect r1 r2 in
      Predicate.implies ~by:i r1 && Predicate.implies ~by:i r2)

let prop_implies_reflexive =
  QCheck.Test.make ~name:"implies is reflexive" ~count:200 arb_range (fun r ->
      Predicate.implies ~by:r r)

let suite =
  [
    Alcotest.test_case "classify paper example" `Quick test_classify_paper_example;
    Alcotest.test_case "range intersect" `Quick test_range_intersect;
    Alcotest.test_case "range union unbounded" `Quick test_range_union_unbounded;
    Alcotest.test_case "range implies" `Quick test_range_implies;
    Alcotest.test_case "equality range" `Quick test_equality_range;
    Alcotest.test_case "column equivalence" `Quick test_equiv_classes;
    Alcotest.test_case "parse update" `Quick test_parse_update;
    Alcotest.test_case "split update (§3.6 example)" `Quick test_split_update;
    Alcotest.test_case "parse group/order" `Quick test_parse_group_order;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "print/parse round-trip" `Quick test_roundtrip_examples;
    QCheck_alcotest.to_alcotest prop_union_weaker;
    QCheck_alcotest.to_alcotest prop_intersect_stronger;
    QCheck_alcotest.to_alcotest prop_implies_reflexive;
  ]
