(** Tests for the optimizer: access-path selection (the Figure 1 plan
    shapes), join enumeration, view matching, what-if costing. *)

open Relax_sql.Types
module Index = Relax_physical.Index
module View = Relax_physical.View
module Config = Relax_physical.Config
module Query = Relax_sql.Query
module Parser = Relax_sql.Parser
module O = Relax_optimizer

let c = Column.make

let cat = lazy (Fixtures.small_catalog ())

let optimize ?(config = Config.empty) s =
  O.Optimizer.optimize (Lazy.force cat) config (Fixtures.parse_select s)

let cost ?config s = (optimize ?config s).cost

let test_scan_baseline () =
  let p = optimize "SELECT r.a FROM r WHERE r.a < 100" in
  Alcotest.(check bool) "positive cost" true (p.cost > 0.0);
  Alcotest.(check bool) "uses no index" true (O.Plan.index_usages p = [])

let test_index_speeds_up_selective () =
  let q = "SELECT r.a, r.b FROM r WHERE r.a = 5" in
  let base = cost q in
  let config = Config.of_indexes [ Index.on "r" [ "a" ] ~suffix:[ "b" ] ] in
  let with_ix = cost ~config q in
  Alcotest.(check bool) "index wins" true (with_ix < base /. 5.0)

let test_covering_avoids_lookup () =
  let q = "SELECT r.a, r.b, r.e FROM r WHERE r.a = 5" in
  let seek_only = Config.of_indexes [ Index.on "r" [ "a" ] ] in
  let covering = Config.of_indexes [ Index.on "r" [ "a" ] ~suffix:[ "b"; "e" ] ] in
  Alcotest.(check bool) "covering cheaper" true
    (cost ~config:covering q < cost ~config:seek_only q)

(* Figure 1(c): an index providing the requested order avoids a sort *)
let test_order_providing_index () =
  let q = "SELECT r.d, r.e FROM r WHERE r.a < 10 AND r.b < 10 ORDER BY r.d" in
  let sort_cfg = Config.of_indexes [ Index.on "r" [ "a" ] ~suffix:[ "b"; "d"; "e" ] ] in
  let order_cfg =
    Config.of_indexes [ Index.on "r" [ "d" ] ~suffix:[ "a"; "b"; "e" ] ]
  in
  let p_order = optimize ~config:order_cfg q in
  (* the order-providing plan must not contain a sort *)
  let rec has_sort (p : O.Plan.t) =
    match p.node with
    | Sort _ -> true
    | Access { input; _ } -> has_sort input
    | Filter { input; _ } | Rid_lookup { input; _ } -> has_sort input
    | Rid_intersect (a, b) -> has_sort a || has_sort b
    | Hash_join { build; probe; _ } -> has_sort build || has_sort probe
    | Merge_join { left; right; _ } -> has_sort left || has_sort right
    | Nl_join { outer; inner; _ } -> has_sort outer || has_sort inner
    | Group { input; _ } -> has_sort input
    | Seq_scan _ | Index_scan _ | Index_seek _ | Rid_union _ -> false
  in
  Alcotest.(check bool) "no sort with d-index" false (has_sort p_order);
  Alcotest.(check bool) "sort with a-index" true
    (has_sort (optimize ~config:sort_cfg q))

(* Figure 1(a): intersection of two selective single-column indexes *)
let test_index_intersection_available () =
  let q = "SELECT r.d FROM r WHERE r.a = 5 AND r.b = 7" in
  let config = Config.of_indexes [ Index.on "r" [ "a" ]; Index.on "r" [ "b" ] ] in
  let p = optimize ~config q in
  (* both single-column indexes are usable; either an intersection or a
     single seek with lookup must beat the heap scan *)
  Alcotest.(check bool) "beats scan" true (p.cost < cost q);
  Alcotest.(check bool) "uses an index" true (O.Plan.index_usages p <> [])

let test_join_uses_index_nlj () =
  let q = "SELECT r.a, s.y FROM r, s WHERE r.sid = s.id AND r.a = 3" in
  let config =
    Config.of_indexes
      [ Index.on "r" [ "a" ] ~suffix:[ "sid" ]; Index.on "s" [ "id" ] ~suffix:[ "y" ] ]
  in
  Alcotest.(check bool) "indexes help join" true (cost ~config q < cost q)

let test_three_way_join () =
  let q =
    "SELECT r.a, s.y, t.z FROM r, s, t WHERE r.sid = s.id AND r.tid = t.id \
     AND r.b = 1"
  in
  let p = optimize q in
  Alcotest.(check bool) "plan exists" true (p.cost > 0.0)

let test_group_by_streaming_with_index () =
  let q = "SELECT r.a, SUM(r.b) FROM r GROUP BY r.a" in
  let config = Config.of_indexes [ Index.on "r" [ "a" ] ~suffix:[ "b" ] ] in
  Alcotest.(check bool) "index helps grouping" true (cost ~config q < cost q)

let test_clustered_promotion_effect () =
  let q = "SELECT r.a, r.b, r.cc, r.e FROM r WHERE r.a BETWEEN 1 AND 3" in
  let sec = Config.of_indexes [ Index.on "r" [ "a" ] ] in
  let clu = Config.of_indexes [ Index.on "r" ~clustered:true [ "a" ] ] in
  (* clustered index covers everything: no rid lookups *)
  Alcotest.(check bool) "clustered at least as good" true
    (cost ~config:clu q <= cost ~config:sec q)

(* --- view matching ---------------------------------------------------- *)

let view_of s =
  match Parser.statement s with
  | Query.Select q -> View.make q.body
  | _ -> Alcotest.fail "expected select"

let with_view ?(rows = 1000.0) v = Config.add_view Config.empty v ~rows

let add_clustered_on_view cfg v =
  (* every simulated view carries a clustered index over its outputs *)
  let outputs = View.outputs v in
  let keys = [ View.column_of_item v (snd (List.hd outputs)) ] in
  Config.add_index cfg (Index.make ~clustered:true ~keys ~suffix:Column_set.empty ())

let test_view_exact_match () =
  let q = "SELECT r.a, s.y FROM r, s WHERE r.sid = s.id AND r.a < 100" in
  let v = view_of q in
  let config = add_clustered_on_view (with_view v) v in
  let p = optimize ~config q in
  Alcotest.(check bool) "uses the view" true (O.Plan.uses_view p v);
  Alcotest.(check bool) "cheaper than base" true (p.cost < cost q)

let test_view_with_residual_predicate () =
  let v = view_of "SELECT r.a, s.y FROM r, s WHERE r.sid = s.id" in
  let q = "SELECT r.a, s.y FROM r, s WHERE r.sid = s.id AND r.a < 5" in
  let config = add_clustered_on_view (with_view ~rows:100_000.0 v) v in
  let p = optimize ~config q in
  Alcotest.(check bool) "view matched with residual" true (O.Plan.uses_view p v)

let test_view_wrong_tables_no_match () =
  let v = view_of "SELECT r.a FROM r WHERE r.a < 5" in
  let q = "SELECT r.a, s.y FROM r, s WHERE r.sid = s.id" in
  let config = add_clustered_on_view (with_view v) v in
  let p = optimize ~config q in
  Alcotest.(check bool) "no match" false (O.Plan.uses_view p v)

let test_view_tighter_range_no_match () =
  (* view keeps a<5 but the query needs a<100: view misses rows *)
  let v = view_of "SELECT r.a, r.b FROM r WHERE r.a < 5" in
  let q = "SELECT r.a, r.b FROM r WHERE r.a < 100" in
  let config = add_clustered_on_view (with_view v) v in
  let p = optimize ~config q in
  Alcotest.(check bool) "no match" false (O.Plan.uses_view p v)

let test_grouped_view_serves_coarser_grouping () =
  let v =
    view_of "SELECT r.a, r.d, SUM(r.b) FROM r GROUP BY r.a, r.d"
  in
  let q = "SELECT r.a, SUM(r.b) FROM r GROUP BY r.a" in
  let config = add_clustered_on_view (with_view ~rows:5000.0 v) v in
  let p = optimize ~config q in
  Alcotest.(check bool) "re-aggregation match" true (O.Plan.uses_view p v)

let test_grouped_view_rejects_spj () =
  let v = view_of "SELECT r.a, SUM(r.b) FROM r GROUP BY r.a" in
  let q = "SELECT r.a, r.b FROM r WHERE r.a < 10" in
  let config = add_clustered_on_view (with_view v) v in
  let p = optimize ~config q in
  Alcotest.(check bool) "no match" false (O.Plan.uses_view p v)

(* merge join exploits index-delivered order on both join sides *)
let test_merge_join_with_ordered_inputs () =
  let q = "SELECT r.sid, s.y FROM r, s WHERE r.sid = s.id" in
  let config =
    Config.of_indexes
      [ Index.on "r" [ "sid" ]; Index.on "s" [ "id" ] ~suffix:[ "y" ] ]
  in
  let p = optimize ~config q in
  let rec has_merge (pl : O.Plan.t) =
    match pl.node with
    | Merge_join _ -> true
    | Access { input; _ }
    | Filter { input; _ }
    | Rid_lookup { input; _ }
    | Sort { input; _ }
    | Group { input; _ } -> has_merge input
    | Rid_intersect (a, b)
    | Hash_join { build = a; probe = b; _ }
    | Nl_join { outer = a; inner = b; _ } -> has_merge a || has_merge b
    | Seq_scan _ | Index_scan _ | Index_seek _ | Rid_union _ -> false
  in
  Alcotest.(check bool) "merge join chosen" true (has_merge p)

(* the plan-template "unions": IN-list predicates seek once per value *)
let test_in_list_union_plan () =
  let q = "SELECT r.b FROM r WHERE r.cc IN (5, 100, 2000)" in
  let config = Config.of_indexes [ Index.on "r" [ "cc" ] ~suffix:[ "b" ] ] in
  let p = optimize ~config q in
  let rec has_union (pl : O.Plan.t) =
    match pl.node with
    | Rid_union _ -> true
    | Access { input; _ }
    | Filter { input; _ }
    | Rid_lookup { input; _ }
    | Sort { input; _ }
    | Group { input; _ } -> has_union input
    | Rid_intersect (a, b) -> has_union a || has_union b
    | Hash_join { build = a; probe = b; _ }
    | Merge_join { left = a; right = b; _ }
    | Nl_join { outer = a; inner = b; _ } -> has_union a || has_union b
    | Seq_scan _ | Index_scan _ | Index_seek _ -> false
  in
  Alcotest.(check bool) "uses a rid union" true (has_union p);
  Alcotest.(check bool) "beats the scan" true (p.cost < cost q)

let test_covering_index_scan_beats_heap () =
  (* no sargable predicate: a narrow covering index still beats scanning
     the wide heap *)
  let q = "SELECT r.a, r.b FROM r WHERE r.a + r.b = 7" in
  let config = Config.of_indexes [ Index.on "r" [ "a" ] ~suffix:[ "b" ] ] in
  let p = optimize ~config q in
  Alcotest.(check bool) "uses the index" true (O.Plan.index_usages p <> []);
  Alcotest.(check bool) "cheaper than heap" true (p.cost < cost q)

let test_order_by_desc_uses_index () =
  (* direction-insensitive order satisfaction: indexes scan both ways *)
  let q = "SELECT r.a, r.b FROM r WHERE r.a < 100 ORDER BY r.a DESC" in
  let config = Config.of_indexes [ Index.on "r" [ "a" ] ~suffix:[ "b" ] ] in
  let p = optimize ~config q in
  let rec has_sort (pl : O.Plan.t) =
    match pl.node with
    | Sort _ -> true
    | Access { input; _ } | Filter { input; _ } | Rid_lookup { input; _ }
    | Group { input; _ } -> has_sort input
    | Rid_intersect (a, b)
    | Hash_join { build = a; probe = b; _ }
    | Merge_join { left = a; right = b; _ }
    | Nl_join { outer = a; inner = b; _ } -> has_sort a || has_sort b
    | Seq_scan _ | Index_scan _ | Index_seek _ | Rid_union _ -> false
  in
  Alcotest.(check bool) "no sort needed" false (has_sort p)

let test_view_extra_columns_still_match () =
  (* the view exposes more than the query needs *)
  let v = view_of "SELECT r.a, r.b, r.d, s.y FROM r, s WHERE r.sid = s.id" in
  let q = "SELECT r.a FROM r, s WHERE r.sid = s.id AND r.b < 50" in
  let config = add_clustered_on_view (with_view ~rows:100_000.0 v) v in
  let p = optimize ~config q in
  Alcotest.(check bool) "matches with projection" true (O.Plan.uses_view p v)

let test_view_missing_residual_column_rejected () =
  (* query filters on a column the view does not expose: no compensation *)
  let v = view_of "SELECT r.a, s.y FROM r, s WHERE r.sid = s.id" in
  let q = "SELECT r.a FROM r, s WHERE r.sid = s.id AND r.b < 50" in
  let config = add_clustered_on_view (with_view ~rows:100_000.0 v) v in
  let p = optimize ~config q in
  Alcotest.(check bool) "no match" false (O.Plan.uses_view p v)

let test_view_other_predicate_structural_match () =
  (* the view's non-sargable conjunct must appear structurally in the query *)
  let v =
    view_of "SELECT r.a, r.b FROM r WHERE r.a < r.b"
  in
  let q_match = "SELECT r.a, r.b FROM r WHERE r.a < r.b AND r.a < 100" in
  let q_nomatch = "SELECT r.a, r.b FROM r WHERE r.a < 100" in
  let config = add_clustered_on_view (with_view ~rows:30_000.0 v) v in
  Alcotest.(check bool) "structural conjunct matches" true
    (O.Plan.uses_view (optimize ~config q_match) v);
  Alcotest.(check bool) "absent conjunct rejected" false
    (O.Plan.uses_view (optimize ~config q_nomatch) v)

let test_param_eq_seek_on_inner () =
  (* a tiny filtered outer joined to a large indexed inner: index
     nested-loop wins, and the inner access records its executions *)
  let q = "SELECT s.y, r.a FROM r, s WHERE r.sid = s.id AND s.x = 100" in
  let config =
    Config.of_indexes
      [
        Index.on "s" [ "x" ] ~suffix:[ "y"; "id" ];
        Index.on "r" [ "sid" ] ~suffix:[ "a" ];
      ]
  in
  let p = optimize ~config q in
  let rec nlj (pl : O.Plan.t) =
    match pl.node with
    | Nl_join { inner; _ } -> (
      match inner.node with
      | Access { info; _ } -> Some info
      | _ -> None)
    | Access { input; _ } | Filter { input; _ } | Rid_lookup { input; _ }
    | Sort { input; _ } | Group { input; _ } -> nlj input
    | Rid_intersect (a, b)
    | Hash_join { build = a; probe = b; _ }
    | Merge_join { left = a; right = b; _ } -> (
      match nlj a with Some x -> Some x | None -> nlj b)
    | Seq_scan _ | Index_scan _ | Index_seek _ | Rid_union _ -> None
  in
  match nlj p with
  | Some info ->
    Alcotest.(check bool) "inner access records executions" true
      (info.executions >= 1.0);
    Alcotest.(check bool) "inner seeks the join key" true (info.usages <> [])
  | None -> Alcotest.fail "expected an index nested-loop join" 

let test_order_through_join () =
  (* interesting orders: an order-providing index on the join's streamed
     side absorbs the top-level sort of the (much larger) join result *)
  let q =
    "SELECT r.a, s.y FROM r, s WHERE r.sid = s.id AND s.x < 400 ORDER BY r.a"
  in
  let base = optimize q in
  let config =
    Config.of_indexes [ Index.on "r" [ "a" ] ~suffix:[ "sid" ] ]
  in
  let p = optimize ~config q in
  Alcotest.(check bool) "order index helps the join query" true
    (p.cost < base.cost);
  Alcotest.(check bool) "ordered plan delivered" true
    (O.Access_path.order_satisfied ~delivered:p.out_order
       ~required:[ (c "r" "a", Asc) ])

(* --- hooks ------------------------------------------------------------- *)

let test_hooks_fire () =
  let index_reqs = ref 0 and view_reqs = ref 0 in
  let hooks =
    {
      O.Hooks.on_index_request = (fun _ -> incr index_reqs);
      on_view_request = (fun _ -> incr view_reqs);
    }
  in
  let q =
    Fixtures.parse_select
      "SELECT r.a, s.y FROM r, s WHERE r.sid = s.id AND r.a < 5"
  in
  let _ = O.Optimizer.optimize (Lazy.force cat) Config.empty ~hooks q in
  Alcotest.(check bool) "index requests fired" true (!index_reqs >= 2);
  Alcotest.(check bool) "view request fired" true (!view_reqs >= 1)

(* --- what-if layer ------------------------------------------------------ *)

let test_whatif_cache () =
  let w = O.Whatif.create (Lazy.force cat) in
  let q = Fixtures.parse_select "SELECT r.a FROM r WHERE r.a = 1" in
  let cfg = Config.of_indexes [ Index.on "s" [ "x" ] ] in
  let p1 = O.Whatif.plan_select w Config.empty ~qid:"q1" q in
  (* an index on an unrelated table must not trigger re-optimization *)
  let p2 = O.Whatif.plan_select w cfg ~qid:"q1" q in
  let calls, hits = O.Whatif.stats w in
  Alcotest.(check int) "one optimizer call" 1 calls;
  Alcotest.(check int) "one cache hit" 1 hits;
  Fixtures.check_float "same cost" p1.cost p2.cost

let test_update_costs_charged () =
  let w = O.Whatif.create (Lazy.force cat) in
  let workload =
    [
      Query.entry "u1"
        (Parser.statement "UPDATE r SET b = b + 1 WHERE a < 100");
    ]
  in
  let base = O.Whatif.workload_cost w Config.empty workload in
  let cfg = Config.of_indexes [ Index.on "r" [ "b" ] ] in
  let with_ix = O.Whatif.workload_cost w cfg workload in
  Alcotest.(check bool) "maintenance charged" true (with_ix > base)

let test_update_irrelevant_index_free () =
  let w = O.Whatif.create (Lazy.force cat) in
  let workload =
    [ Query.entry "u1" (Parser.statement "UPDATE r SET b = b + 1 WHERE a = 1") ]
  in
  (* the index on a helps find the rows and b is not in it: no maintenance *)
  let cfg = Config.of_indexes [ Index.on "r" [ "a" ] ] in
  let base = O.Whatif.workload_cost w Config.empty workload in
  let with_ix = O.Whatif.workload_cost w cfg workload in
  Alcotest.(check bool) "helpful index lowers update cost" true (with_ix < base)

(* --- properties --------------------------------------------------------- *)

let queries_for_props =
  [
    "SELECT r.a, r.b FROM r WHERE r.a = 5";
    "SELECT r.a, r.b, r.e FROM r WHERE r.a < 50 AND r.b = 2";
    "SELECT r.a, s.y FROM r, s WHERE r.sid = s.id AND r.a < 10";
    "SELECT r.a, SUM(r.b) FROM r WHERE r.d = 1 GROUP BY r.a";
    "SELECT r.d, r.e FROM r WHERE r.a < 10 ORDER BY r.d";
  ]

let arb_query = QCheck.(make (QCheck.Gen.oneofl queries_for_props))

let random_config rng =
  let cols = [ "a"; "b"; "cc"; "d"; "e"; "sid" ] in
  let n = 1 + Random.State.int rng 3 in
  let idx _ =
    let k = 1 + Random.State.int rng 2 in
    let keys =
      List.sort_uniq String.compare
        (List.init k (fun _ -> List.nth cols (Random.State.int rng (List.length cols))))
    in
    Index.on "r" keys
  in
  Config.of_indexes (List.init n idx)

let prop_more_indexes_never_hurt =
  (* the optimizer picks among alternatives: adding structures can only add
     alternatives, so estimated cost is monotone non-increasing *)
  QCheck.Test.make ~name:"adding indexes never raises plan cost" ~count:100
    (QCheck.pair arb_query QCheck.int) (fun (q, seed) ->
      let rng = Random.State.make [| seed |] in
      let cfg = random_config rng in
      let base = cost q in
      let augmented = cost ~config:cfg q in
      augmented <= base +. 1e-6)

let prop_cost_positive =
  QCheck.Test.make ~name:"plan costs are positive and finite" ~count:50
    arb_query (fun q ->
      let x = cost q in
      x > 0.0 && Float.is_finite x)

let suite =
  [
    Alcotest.test_case "scan baseline" `Quick test_scan_baseline;
    Alcotest.test_case "selective index wins" `Quick test_index_speeds_up_selective;
    Alcotest.test_case "covering avoids lookup" `Quick test_covering_avoids_lookup;
    Alcotest.test_case "order-providing index (Fig 1c)" `Quick
      test_order_providing_index;
    Alcotest.test_case "index intersection (Fig 1a)" `Quick
      test_index_intersection_available;
    Alcotest.test_case "index NLJ" `Quick test_join_uses_index_nlj;
    Alcotest.test_case "three-way join" `Quick test_three_way_join;
    Alcotest.test_case "group-by with index" `Quick test_group_by_streaming_with_index;
    Alcotest.test_case "clustered promotion" `Quick test_clustered_promotion_effect;
    Alcotest.test_case "IN-list rid union" `Quick test_in_list_union_plan;
    Alcotest.test_case "merge join on ordered inputs" `Quick
      test_merge_join_with_ordered_inputs;
    Alcotest.test_case "covering scan beats heap" `Quick
      test_covering_index_scan_beats_heap;
    Alcotest.test_case "DESC order via index" `Quick test_order_by_desc_uses_index;
    Alcotest.test_case "view: extra columns" `Quick test_view_extra_columns_still_match;
    Alcotest.test_case "view: missing residual column" `Quick
      test_view_missing_residual_column_rejected;
    Alcotest.test_case "view: structural other conjunct" `Quick
      test_view_other_predicate_structural_match;
    Alcotest.test_case "NLJ inner executions" `Quick test_param_eq_seek_on_inner;
    Alcotest.test_case "order through join (interesting orders)" `Quick
      test_order_through_join;
    Alcotest.test_case "view: exact match" `Quick test_view_exact_match;
    Alcotest.test_case "view: residual predicate" `Quick
      test_view_with_residual_predicate;
    Alcotest.test_case "view: FROM mismatch" `Quick test_view_wrong_tables_no_match;
    Alcotest.test_case "view: tighter range rejected" `Quick
      test_view_tighter_range_no_match;
    Alcotest.test_case "view: coarser regrouping" `Quick
      test_grouped_view_serves_coarser_grouping;
    Alcotest.test_case "view: grouped rejects SPJ" `Quick test_grouped_view_rejects_spj;
    Alcotest.test_case "hooks fire" `Quick test_hooks_fire;
    Alcotest.test_case "what-if cache" `Quick test_whatif_cache;
    Alcotest.test_case "update maintenance charged" `Quick test_update_costs_charged;
    Alcotest.test_case "update helpful index" `Quick test_update_irrelevant_index_free;
    QCheck_alcotest.to_alcotest prop_more_indexes_never_hurt;
    QCheck_alcotest.to_alcotest prop_cost_positive;
  ]
