(** Tests for the bottom-up baseline (CTT). *)

open Relax_sql.Types
module Query = Relax_sql.Query
module Index = Relax_physical.Index
module Config = Relax_physical.Config
module O = Relax_optimizer
module B = Relax_baseline

let cat = lazy (Fixtures.small_catalog ())
let mb x = x *. 1024.0 *. 1024.0

let workload_of_strings l : Query.workload =
  List.mapi
    (fun i s -> Query.entry (Printf.sprintf "q%d" (i + 1)) (Relax_sql.Parser.statement s))
    l

let test_candidates_from_structure () =
  let q =
    Fixtures.parse_select
      "SELECT r.a, r.b FROM r WHERE r.a = 5 AND r.d < 10 ORDER BY r.b"
  in
  let cands = B.Candidate.index_candidates q in
  Alcotest.(check bool) "several candidates" true (List.length cands >= 3);
  (* equality column a must appear as a leading key somewhere *)
  Alcotest.(check bool) "a leads some candidate" true
    (List.exists
       (fun (i : Index.t) ->
         match i.keys with
         | k :: _ -> Column.equal k (Column.make "r" "a")
         | [] -> false)
       cands)

let test_candidate_key_cap () =
  let q =
    Fixtures.parse_select
      "SELECT r.a FROM r WHERE r.a = 1 AND r.b = 2 AND r.cc = 3 AND r.d = 4"
  in
  let cands = B.Candidate.index_candidates q in
  List.iter
    (fun (i : Index.t) ->
      Alcotest.(check bool) "at most 3 key columns" true (List.length i.keys <= 3))
    cands

let test_view_candidates_whole_block_only () =
  let cat = Lazy.force cat in
  let env = O.Env.make cat Config.empty in
  let q =
    Fixtures.parse_select
      "SELECT r.a, SUM(s.x) FROM r, s WHERE r.sid = s.id GROUP BY r.a"
  in
  let vcands = B.Candidate.view_candidates env q in
  (* full block + SPJ core *)
  Alcotest.(check int) "two view candidates" 2 (List.length vcands)

let tune ?(views = false) ?(budget = mb 50.0) w =
  let cat = Lazy.force cat in
  B.Ctt.tune cat (workload_of_strings w)
    (B.Ctt.default_options ~with_views:views ~space_budget:budget ())

let small_workload =
  [
    "SELECT r.a, r.b FROM r WHERE r.a = 5";
    "SELECT r.b, r.cc FROM r WHERE r.b = 7 AND r.d < 10";
    "SELECT r.a, s.y FROM r, s WHERE r.sid = s.id AND r.a < 20";
    "SELECT r.d, SUM(r.a) FROM r GROUP BY r.d";
  ]

let test_ctt_improves () =
  let r = tune small_workload in
  Alcotest.(check bool) "positive improvement" true (r.improvement > 0.0);
  Alcotest.(check bool) "within budget" true (r.recommended_size <= mb 50.0)

let test_ctt_respects_budget () =
  (* base-table heaps (~6 MB) count toward the budget *)
  let r = tune ~budget:(mb 8.0) small_workload in
  Alcotest.(check bool) "within tight budget" true (r.recommended_size <= mb 8.0)

let test_ctt_trace_monotone () =
  let r = tune small_workload in
  let costs = List.map snd r.trace in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-9 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "greedy trace decreasing" true (monotone costs)

let test_ctt_with_views_at_least_as_good () =
  let w =
    [
      "SELECT r.a, SUM(s.x) FROM r, s WHERE r.sid = s.id GROUP BY r.a";
      "SELECT r.d, SUM(r.a) FROM r GROUP BY r.d";
    ]
  in
  let without = tune ~views:false w in
  let with_v = tune ~views:true w in
  Alcotest.(check bool) "views help grouped joins" true
    (with_v.recommended_cost <= without.recommended_cost +. 1e-6)

let test_ctt_update_workload () =
  let r =
    tune
      [
        "SELECT r.a, r.b FROM r WHERE r.a = 5";
        "UPDATE r SET b = b + 1 WHERE a < 100";
      ]
  in
  Alcotest.(check bool) "handles updates" true
    (r.recommended_cost <= r.initial_cost +. 1e-6)

(* the paper's headline comparison, in miniature: on workloads where the
   optimal structures are visible only through optimizer requests, the
   relaxation tuner should never lose to the bottom-up baseline by much,
   and usually win *)
let test_ptt_not_worse_than_ctt () =
  let cat = Lazy.force cat in
  let w = workload_of_strings small_workload in
  let budget = mb 12.0 in
  let ctt =
    B.Ctt.tune cat w (B.Ctt.default_options ~with_views:false ~space_budget:budget ())
  in
  let opts =
    Relax_tuner.Tuner.default_options ~mode:Relax_tuner.Tuner.Indexes_only
      ~space_budget:budget ()
  in
  let ptt = Relax_tuner.Tuner.tune cat w { opts with max_iterations = 150 } in
  Alcotest.(check bool)
    (Printf.sprintf "PTT %.1f%% vs CTT %.1f%%" ptt.improvement ctt.improvement)
    true
    (ptt.improvement >= ctt.improvement -. 5.0)

let suite =
  [
    Alcotest.test_case "candidates from query structure" `Quick
      test_candidates_from_structure;
    Alcotest.test_case "key cap shortcut" `Quick test_candidate_key_cap;
    Alcotest.test_case "view candidates" `Quick test_view_candidates_whole_block_only;
    Alcotest.test_case "ctt improves" `Quick test_ctt_improves;
    Alcotest.test_case "ctt budget" `Quick test_ctt_respects_budget;
    Alcotest.test_case "ctt trace monotone" `Quick test_ctt_trace_monotone;
    Alcotest.test_case "ctt views help" `Quick test_ctt_with_views_at_least_as_good;
    Alcotest.test_case "ctt updates" `Quick test_ctt_update_workload;
    Alcotest.test_case "PTT >= CTT (miniature Fig 8)" `Slow
      test_ptt_not_worse_than_ctt;
  ]
