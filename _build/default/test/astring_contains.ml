(** Tiny substring helpers for tests (avoiding an astring dependency). *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  nn = 0 || go 0

let count haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then 0
  else begin
    let rec go i acc =
      if i + nn > nh then acc
      else if String.sub haystack i nn = needle then go (i + nn) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  end
