(** Tests for the catalog substrate: RNG determinism, histograms,
    statistics. *)

open Relax_sql.Types
module Rng = Relax_catalog.Rng
module Histogram = Relax_catalog.Histogram
module Distribution = Relax_catalog.Distribution
module Catalog = Relax_catalog.Catalog

let test_rng_deterministic () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Fixtures.check_float "same stream" (Rng.float a) (Rng.float b)
  done

let test_rng_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 10 in
    Alcotest.(check bool) "in bounds" true (x >= 0 && x < 10)
  done

let test_zipf_skews_low_ranks () =
  let rng = Rng.create 17 in
  let low = ref 0 in
  let n = 2000 in
  for _ = 1 to n do
    if Rng.zipf rng ~n:100 ~skew:1.0 <= 10 then incr low
  done;
  (* with skew 1.0 the first 10 ranks hold well over a third of the mass *)
  Alcotest.(check bool) "zipf mass at low ranks" true (!low > n / 3)

let test_histogram_full_range () =
  let h = Histogram.build ~seed:3 ~rows:10_000 (Distribution.Uniform (0.0, 100.0)) in
  let s = Histogram.selectivity_range h ~lo:neg_infinity ~hi:infinity in
  Fixtures.check_float ~eps:1e-6 "full range" 1.0 s

let test_histogram_half_range () =
  let h = Histogram.build ~seed:3 ~rows:10_000 (Distribution.Uniform (0.0, 100.0)) in
  let s = Histogram.selectivity_range h ~lo:0.0 ~hi:50.0 in
  Alcotest.(check bool) "about half" true (s > 0.4 && s < 0.6)

let test_histogram_eq () =
  let h = Histogram.build ~seed:3 ~rows:10_000 (Distribution.Uniform (0.0, 100.0)) in
  let s = Histogram.selectivity_eq h 50.0 in
  Alcotest.(check bool) "equality is selective" true (s > 0.0 && s < 0.1)

let test_histogram_of_values () =
  let h = Histogram.of_values ~buckets:4 [ 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8. ] in
  Fixtures.check_float ~eps:1e-6 "min" 1.0 (Histogram.min_value h);
  Fixtures.check_float ~eps:1e-6 "max" 8.0 (Histogram.max_value h)

let test_catalog_stats () =
  let cat = Fixtures.small_catalog () in
  Fixtures.check_float "rows r" 100_000.0 (Catalog.rows cat "r");
  let stats = Catalog.col_stats cat (Column.make "r" "id") in
  Fixtures.check_float "serial distinct" 100_000.0 stats.distinct;
  Alcotest.(check int) "r columns" 8 (List.length (Catalog.columns_of cat "r"))

let test_catalog_derived_table () =
  let cat = Fixtures.small_catalog () in
  let s = Catalog.col_stats cat (Column.make "r" "a") in
  let cat' =
    Catalog.add_derived_table cat ~name:"v_x" ~rows:500.0 ~cols:[ ("r_a", s) ]
  in
  Alcotest.(check bool) "derived exists" true (Catalog.mem_table cat' "v_x");
  Fixtures.check_float "derived rows" 500.0 (Catalog.rows cat' "v_x");
  Alcotest.(check bool) "original unchanged" false (Catalog.mem_table cat "v_x")

(* --- schema DDL ------------------------------------------------------ *)

let schema_src = {|
CREATE TABLE users ROWS 5000 (
  id INT SERIAL,
  country INT UNIFORM(0, 99),
  income FLOAT NORMAL(60000, 25000),
  segment INT ZIPF(8, 0.4),
  name VARCHAR(40)
);
CREATE TABLE posts ROWS 20000 (
  id INT SERIAL,
  author INT REFERENCES users(id),
  score INT ZIPF(1000, 0.9)
);
|}

let test_schema_parse () =
  let cat, joins = Relax_catalog.Schema_parser.parse schema_src in
  Alcotest.(check int) "two tables" 2 (List.length (Catalog.table_names cat));
  Fixtures.check_float "users rows" 5000.0 (Catalog.rows cat "users");
  Alcotest.(check int) "one fk edge" 1 (List.length joins);
  let s = Catalog.col_stats cat (Column.make "users" "country") in
  Alcotest.(check bool) "country distinct ~100" true
    (s.distinct >= 90.0 && s.distinct <= 110.0)

let test_schema_references_sets_range () =
  let cat, _ = Relax_catalog.Schema_parser.parse schema_src in
  let s = Catalog.col_stats cat (Column.make "posts" "author") in
  (* uniform over the parent's 5000-row key range *)
  Alcotest.(check bool) "fk max below parent rows" true (s.max_v <= 4999.5)

let test_schema_default_distribution () =
  let cat, _ = Relax_catalog.Schema_parser.parse schema_src in
  let s = Catalog.col_stats cat (Column.make "users" "name") in
  Fixtures.check_float "varchar width" 20.0 s.width

let test_schema_errors () =
  let bad =
    [
      "CREATE users ROWS 5 (id INT SERIAL)";
      "CREATE TABLE t (id INT SERIAL)";
      "CREATE TABLE t ROWS 5 (id INT REFERENCES missing(id))";
      "CREATE TABLE t ROWS 5 (id WIBBLE)";
    ]
  in
  List.iter
    (fun src ->
      match Relax_catalog.Schema_parser.parse src with
      | exception Relax_catalog.Schema_parser.Schema_error _ -> ()
      | exception Relax_sql.Lexer.Lex_error _ -> ()
      | _ -> Alcotest.failf "expected schema error for %S" src)
    bad

(* --- property tests ------------------------------------------------- *)

let prop_selectivity_bounds =
  QCheck.Test.make ~name:"range selectivity in [0,1]" ~count:300
    QCheck.(pair (float_range (-200.) 200.) (float_range (-200.) 200.))
    (fun (a, b) ->
      let h =
        Histogram.build ~seed:11 ~rows:1000 (Distribution.Uniform (0.0, 100.0))
      in
      let lo = Float.min a b and hi = Float.max a b in
      let s = Histogram.selectivity_range h ~lo ~hi in
      s >= 0.0 && s <= 1.0)

let prop_selectivity_additive =
  QCheck.Test.make ~name:"selectivity additive over split point" ~count:200
    QCheck.(float_range 0.0 100.0)
    (fun mid ->
      let h =
        Histogram.build ~seed:11 ~rows:1000 (Distribution.Uniform (0.0, 100.0))
      in
      let left = Histogram.selectivity_range h ~lo:neg_infinity ~hi:mid in
      let right = Histogram.selectivity_range h ~lo:mid ~hi:infinity in
      (* buckets overlap at the split point, so allow a one-bucket slack *)
      left +. right >= 0.99 && left +. right <= 1.1)

let prop_selectivity_monotone =
  QCheck.Test.make ~name:"selectivity monotone in range width" ~count:200
    QCheck.(pair (float_range 0.0 100.0) (float_range 0.0 50.0))
    (fun (hi, delta) ->
      let h =
        Histogram.build ~seed:11 ~rows:1000 (Distribution.Uniform (0.0, 100.0))
      in
      let narrow = Histogram.selectivity_range h ~lo:0.0 ~hi in
      let wide = Histogram.selectivity_range h ~lo:0.0 ~hi:(hi +. delta) in
      wide >= narrow -. 1e-9)

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skews_low_ranks;
    Alcotest.test_case "histogram full range" `Quick test_histogram_full_range;
    Alcotest.test_case "histogram half range" `Quick test_histogram_half_range;
    Alcotest.test_case "histogram equality" `Quick test_histogram_eq;
    Alcotest.test_case "histogram of values" `Quick test_histogram_of_values;
    Alcotest.test_case "catalog stats" `Quick test_catalog_stats;
    Alcotest.test_case "derived tables" `Quick test_catalog_derived_table;
    Alcotest.test_case "schema: parse" `Quick test_schema_parse;
    Alcotest.test_case "schema: references" `Quick test_schema_references_sets_range;
    Alcotest.test_case "schema: defaults" `Quick test_schema_default_distribution;
    Alcotest.test_case "schema: errors" `Quick test_schema_errors;
    QCheck_alcotest.to_alcotest prop_selectivity_bounds;
    QCheck_alcotest.to_alcotest prop_selectivity_additive;
    QCheck_alcotest.to_alcotest prop_selectivity_monotone;
  ]
