(** Tests for the physical layer: the index algebra of §3.1.1 (checked
    against the paper's worked examples), view merging (§3.1.2), the size
    model, and configurations. *)

open Relax_sql.Types
module Index = Relax_physical.Index
module View = Relax_physical.View
module Config = Relax_physical.Config
module Size_model = Relax_physical.Size_model
module Query = Relax_sql.Query
module Predicate = Relax_sql.Predicate
module Parser = Relax_sql.Parser

let c = Column.make

let cols t names = List.map (fun n -> c t n) names

let check_index msg ~keys ~suffix (i : Index.t) =
  Alcotest.(check (list string))
    (msg ^ " keys") keys
    (List.map (fun (x : column) -> x.col) i.keys);
  Alcotest.(check (list string))
    (msg ^ " suffix")
    (List.sort String.compare suffix)
    (List.map (fun (x : column) -> x.col) (Column_set.elements i.suffix)
    |> List.sort String.compare)

(* Paper example: merging I1=([a,b,c];{d,e,f}) and I2=([c,d,g];{e})
   results in I12=([a,b,c];{d,e,f,g}). *)
let test_merge_paper_example () =
  let i1 = Index.on "r" [ "a"; "b"; "cc" ] ~suffix:[ "d"; "e"; "f" ] in
  let i2 = Index.on "r" [ "cc"; "d"; "g" ] ~suffix:[ "e" ] in
  let m = Index.merge i1 i2 in
  check_index "merge" ~keys:[ "a"; "b"; "cc" ] ~suffix:[ "d"; "e"; "f"; "g" ] m

let test_merge_prefix_rule () =
  (* if K1 is a prefix of K2, merge keeps K2 as the key *)
  let i1 = Index.on "r" [ "a" ] ~suffix:[ "e" ] in
  let i2 = Index.on "r" [ "a"; "b" ] ~suffix:[ "f" ] in
  let m = Index.merge i1 i2 in
  check_index "prefix merge" ~keys:[ "a"; "b" ] ~suffix:[ "e"; "f" ] m

(* Paper example: splitting I1=([a,b,c];{d,e,f}) and I2=([c,a];{e})
   gives IC=([a,c];{e}), IR1=([b];{d,f}). *)
let test_split_paper_example_1 () =
  let i1 = Index.on "r" [ "a"; "b"; "cc" ] ~suffix:[ "d"; "e"; "f" ] in
  let i2 = Index.on "r" [ "cc"; "a" ] ~suffix:[ "e" ] in
  match Index.split i1 i2 with
  | Some (ic, Some ir1, ir2) ->
    check_index "IC" ~keys:[ "a"; "cc" ] ~suffix:[ "e" ] ic;
    check_index "IR1" ~keys:[ "b" ] ~suffix:[ "d"; "f" ] ir1;
    (* K2 and KC hold the same columns: no residual index is needed *)
    Alcotest.(check bool) "no IR2" true (ir2 = None)
  | _ -> Alcotest.fail "split failed"

(* Paper example: splitting I1=([a,b,c];{d,e,f}) and I3=([a,b];{d,g})
   gives IC=([a,b];{d}) and IR1=([c];{e,f}). *)
let test_split_paper_example_2 () =
  let i1 = Index.on "r" [ "a"; "b"; "cc" ] ~suffix:[ "d"; "e"; "f" ] in
  let i3 = Index.on "r" [ "a"; "b" ] ~suffix:[ "d"; "g" ] in
  match Index.split i1 i3 with
  | Some (ic, Some ir1, None) ->
    check_index "IC" ~keys:[ "a"; "b" ] ~suffix:[ "d" ] ic;
    check_index "IR1" ~keys:[ "cc" ] ~suffix:[ "e"; "f" ] ir1
  | _ -> Alcotest.fail "split shape unexpected"

let test_split_disjoint_keys_undefined () =
  let i1 = Index.on "r" [ "a" ] in
  let i2 = Index.on "r" [ "b" ] in
  Alcotest.(check bool) "undefined" true (Index.split i1 i2 = None)

let test_prefixes () =
  let i = Index.on "r" [ "a"; "b" ] ~suffix:[ "cc" ] in
  let ps = Index.prefixes i in
  (* [a], [a,b] (dropping the suffix) *)
  Alcotest.(check int) "count" 2 (List.length ps);
  List.iter
    (fun (p : Index.t) ->
      Alcotest.(check bool) "no suffix" true (Column_set.is_empty p.suffix))
    ps

let test_prefixes_no_suffix () =
  let i = Index.on "r" [ "a"; "b" ] in
  (* only the proper prefix [a]; [a,b] would be the index itself *)
  Alcotest.(check int) "count" 1 (List.length (Index.prefixes i))

let test_merge_idempotent_coverage () =
  let i1 = Index.on "r" [ "a"; "b" ] ~suffix:[ "cc" ] in
  let i2 = Index.on "r" [ "b"; "d" ] in
  let m = Index.merge i1 i2 in
  Alcotest.(check bool) "covers i1" true (Index.covers_columns m ~of_:i1);
  Alcotest.(check bool) "covers i2" true (Index.covers_columns m ~of_:i2)

(* --- view merging --------------------------------------------------- *)

let spjg_of s =
  match Parser.statement s with
  | Query.Select q -> q.body
  | _ -> Alcotest.fail "expected select"

(* The paper's §3.1.2 merging example: V1 selects under R.a<10, V2 under
   10<=R.a<20 with grouping; the merge keeps the union range and the
   grouping discipline. *)
let test_view_merge_ranges () =
  let v1 =
    View.make (spjg_of "SELECT r.a, r.b FROM r WHERE r.a >= 2 AND r.a < 10")
  in
  let v2 =
    View.make (spjg_of "SELECT r.a, r.b FROM r WHERE r.a >= 5 AND r.a < 20")
  in
  match View.merge v1 v2 with
  | Some { merged; _ } ->
    let d = View.definition merged in
    (* [2,10) union [5,20) = [2,20) *)
    Alcotest.(check int) "one surviving range" 1 (List.length d.ranges);
    let r = List.hd d.ranges in
    Alcotest.(check bool) "lo 2" true (r.lo <> None);
    Alcotest.(check bool) "hi 20" true (r.hi <> None)
  | None -> Alcotest.fail "merge failed"

let test_view_merge_unbounded_range_dropped () =
  let v1 = View.make (spjg_of "SELECT r.a FROM r WHERE r.a < 10") in
  let v2 = View.make (spjg_of "SELECT r.a FROM r WHERE r.a > 5") in
  match View.merge v1 v2 with
  | Some { merged; _ } ->
    Alcotest.(check int) "range dropped" 0
      (List.length (View.definition merged).ranges)
  | None -> Alcotest.fail "merge failed"

let test_view_merge_different_from_fails () =
  let v1 = View.make (spjg_of "SELECT r.a FROM r") in
  let v2 = View.make (spjg_of "SELECT s.x FROM s") in
  Alcotest.(check bool) "no merge" true (View.merge v1 v2 = None)

let test_view_merge_group_by () =
  let v1 =
    View.make (spjg_of "SELECT r.a, SUM(r.b) FROM r GROUP BY r.a")
  in
  let v2 =
    View.make (spjg_of "SELECT r.d, SUM(r.b) FROM r GROUP BY r.d")
  in
  match View.merge v1 v2 with
  | Some { merged; _ } ->
    let d = View.definition merged in
    Alcotest.(check int) "grouping union" 2 (List.length d.group_by);
    Alcotest.(check bool) "keeps aggregate" true (Query.has_aggregates d)
  | None -> Alcotest.fail "merge failed"

let test_view_merge_group_with_spj () =
  (* one side grouped, other not: grouping is dropped, aggregates debased *)
  let v1 = View.make (spjg_of "SELECT r.a, SUM(r.b) FROM r GROUP BY r.a") in
  let v2 = View.make (spjg_of "SELECT r.a, r.d FROM r") in
  match View.merge v1 v2 with
  | Some { merged; _ } ->
    let d = View.definition merged in
    Alcotest.(check int) "no grouping" 0 (List.length d.group_by);
    Alcotest.(check bool) "no aggregates" false (Query.has_aggregates d);
    (* r.b must survive as a base column so SUM can be recomputed *)
    Alcotest.(check bool) "exposes b" true
      (View.view_column_of_base merged (c "r" "b") <> None)
  | None -> Alcotest.fail "merge failed"

let test_view_index_promotion_mapping () =
  let v1 = View.make (spjg_of "SELECT r.a, r.b FROM r WHERE r.a < 10") in
  let v2 = View.make (spjg_of "SELECT r.a, r.b FROM r WHERE r.a >= 2") in
  match View.merge v1 v2 with
  | Some { merged; remap1; _ } ->
    let va = Option.get (View.view_column_of_base v1 (c "r" "a")) in
    let mapped = remap1 va in
    Alcotest.(check bool) "column maps" true (mapped <> None);
    Alcotest.(check string) "to merged view" (View.name merged)
      (Option.get mapped).tbl
  | None -> Alcotest.fail "merge failed"

(* --- size model ------------------------------------------------------ *)

let test_size_hand_computed () =
  (* 8 bytes/leaf entry, usable page = (8192-96)*0.75 = 6072 bytes ->
     PL=round(6072/12)=506 with the 4-byte key + 8-byte rid *)
  let i = Index.on "t" [ "id" ] in
  let bytes =
    Size_model.index_bytes ~rows:506.0 ~width_of:(fun _ -> 4.0) ~row_width:16.0 i
  in
  (* exactly one leaf page + one root page over it? 506 rows exactly fill one
     leaf page, so a single page suffices and no internal level is needed *)
  Fixtures.check_float "one page" 8192.0 bytes

let test_size_monotone_in_rows () =
  let i = Index.on "t" [ "id" ] ~suffix:[ "z" ] in
  let size rows =
    Size_model.index_bytes ~rows ~width_of:(fun _ -> 4.0) ~row_width:16.0 i
  in
  Alcotest.(check bool) "monotone" true
    (size 1_000.0 <= size 10_000.0 && size 10_000.0 <= size 1_000_000.0)

let test_size_clustered_uses_row_width () =
  let sec = Index.on "t" [ "id" ] in
  let clu = Index.on "t" ~clustered:true [ "id" ] in
  let size i =
    Size_model.index_bytes ~rows:100_000.0 ~width_of:(fun _ -> 4.0)
      ~row_width:200.0 i
  in
  Alcotest.(check bool) "clustered larger" true (size clu > size sec)

let test_height_grows () =
  let i = Index.on "t" [ "id" ] in
  let h rows =
    Size_model.height ~rows ~width_of:(fun _ -> 4.0) ~row_width:16.0 i
  in
  Alcotest.(check bool) "height grows" true (h 100.0 <= h 10_000_000.0)

(* --- configurations -------------------------------------------------- *)

let test_config_basic () =
  let i1 = Index.on "r" [ "a" ] and i2 = Index.on "s" [ "x" ] in
  let cfg = Config.of_indexes [ i1; i2 ] in
  Alcotest.(check int) "cardinal" 2 (Config.cardinal cfg);
  Alcotest.(check int) "on r" 1 (List.length (Config.indexes_on cfg "r"));
  let cfg = Config.remove_index cfg i1 in
  Alcotest.(check int) "after removal" 1 (Config.cardinal cfg)

let test_config_view_removal_drops_indexes () =
  let v = View.make (spjg_of "SELECT r.a, r.b FROM r WHERE r.a < 10") in
  let va = Option.get (View.view_column_of_base v (c "r" "a")) in
  let iv = Index.make ~keys:[ va ] ~suffix:Column_set.empty () in
  let cfg = Config.add_view Config.empty v ~rows:1000.0 in
  let cfg = Config.add_index cfg iv in
  Alcotest.(check int) "two structures" 2 (Config.cardinal cfg);
  let cfg = Config.remove_view cfg v in
  Alcotest.(check int) "all gone" 0 (Config.cardinal cfg)

let test_config_size () =
  let cat = Fixtures.small_catalog () in
  let cfg = Config.of_indexes [ Index.on "r" [ "a" ] ~suffix:[ "b" ] ] in
  let bytes = Config.bytes cat cfg in
  (* 100k rows * (4+4+8 bytes) ~ 1.6MB plus tree overhead *)
  Alcotest.(check bool) "sane size" true (bytes > 1e6 && bytes < 1e7)

(* --- property tests -------------------------------------------------- *)

let arb_index =
  let gen =
    QCheck.Gen.(
      let col_pool = [ "a"; "b"; "cc"; "d"; "e"; "f"; "g" ] in
      let* nk = int_range 1 4 in
      let* perm = shuffle_l col_pool in
      let keys = List.filteri (fun i _ -> i < nk) perm in
      let* ns = int_range 0 3 in
      let rest = List.filteri (fun i _ -> i >= nk) perm in
      let suffix = List.filteri (fun i _ -> i < ns) rest in
      return (Index.on "r" keys ~suffix))
  in
  QCheck.make ~print:Index.name gen

let prop_merge_covers_both =
  QCheck.Test.make ~name:"merged index covers both parents" ~count:500
    (QCheck.pair arb_index arb_index) (fun (i1, i2) ->
      let m = Index.merge i1 i2 in
      Index.covers_columns m ~of_:i1 && Index.covers_columns m ~of_:i2)

let prop_merge_seekable_as_first =
  QCheck.Test.make ~name:"merge keeps a key prefix usable for I1" ~count:500
    (QCheck.pair arb_index arb_index) (fun (i1, i2) ->
      let m = Index.merge i1 i2 in
      (* the merged key sequence starts with K1, or K1 is a prefix of K2 =
         the merged keys *)
      Index.is_prefix ~prefix:i1.keys m.keys
      || Index.is_prefix ~prefix:i1.keys i2.keys)

let prop_split_no_new_columns =
  QCheck.Test.make ~name:"split introduces no new columns" ~count:500
    (QCheck.pair arb_index arb_index) (fun (i1, i2) ->
      match Index.split i1 i2 with
      | None -> true
      | Some (ic, ir1, ir2) ->
        let union =
          Column_set.union (Index.columns i1) (Index.columns i2)
        in
        let all =
          List.fold_left
            (fun acc -> function
              | Some i -> Column_set.union acc (Index.columns i)
              | None -> acc)
            (Index.columns ic)
            [ ir1; ir2 ]
        in
        Column_set.subset all union)

let prop_split_common_is_common =
  QCheck.Test.make ~name:"split common index ⊆ both parents" ~count:500
    (QCheck.pair arb_index arb_index) (fun (i1, i2) ->
      match Index.split i1 i2 with
      | None -> true
      | Some (ic, _, _) ->
        Column_set.subset (Index.columns ic) (Index.columns i1)
        && Column_set.subset (Index.columns ic) (Index.columns i2))

let prop_size_positive =
  QCheck.Test.make ~name:"index size positive" ~count:200 arb_index (fun i ->
      Size_model.index_bytes ~rows:1000.0 ~width_of:(fun _ -> 6.0)
        ~row_width:64.0 i
      > 0.0)

let suite =
  [
    Alcotest.test_case "merge: paper example" `Quick test_merge_paper_example;
    Alcotest.test_case "merge: prefix rule" `Quick test_merge_prefix_rule;
    Alcotest.test_case "split: paper example 1" `Quick test_split_paper_example_1;
    Alcotest.test_case "split: paper example 2" `Quick test_split_paper_example_2;
    Alcotest.test_case "split: disjoint keys" `Quick test_split_disjoint_keys_undefined;
    Alcotest.test_case "prefixes" `Quick test_prefixes;
    Alcotest.test_case "prefixes without suffix" `Quick test_prefixes_no_suffix;
    Alcotest.test_case "merge coverage" `Quick test_merge_idempotent_coverage;
    Alcotest.test_case "view merge: ranges" `Quick test_view_merge_ranges;
    Alcotest.test_case "view merge: unbounded dropped" `Quick
      test_view_merge_unbounded_range_dropped;
    Alcotest.test_case "view merge: FROM mismatch" `Quick
      test_view_merge_different_from_fails;
    Alcotest.test_case "view merge: group-by union" `Quick test_view_merge_group_by;
    Alcotest.test_case "view merge: grouped with SPJ" `Quick
      test_view_merge_group_with_spj;
    Alcotest.test_case "view merge: index promotion mapping" `Quick
      test_view_index_promotion_mapping;
    Alcotest.test_case "size model: hand computed" `Quick test_size_hand_computed;
    Alcotest.test_case "size model: monotone" `Quick test_size_monotone_in_rows;
    Alcotest.test_case "size model: clustered" `Quick
      test_size_clustered_uses_row_width;
    Alcotest.test_case "size model: height" `Quick test_height_grows;
    Alcotest.test_case "config basics" `Quick test_config_basic;
    Alcotest.test_case "config view removal" `Quick
      test_config_view_removal_drops_indexes;
    Alcotest.test_case "config size" `Quick test_config_size;
    QCheck_alcotest.to_alcotest prop_merge_covers_both;
    QCheck_alcotest.to_alcotest prop_merge_seekable_as_first;
    QCheck_alcotest.to_alcotest prop_split_no_new_columns;
    QCheck_alcotest.to_alcotest prop_split_common_is_common;
    QCheck_alcotest.to_alcotest prop_size_positive;
  ]
