(** Tests for the workload substrate: the TPC-H analogue, the synthetic
    databases, and the random generator. *)

module Query = Relax_sql.Query
module Catalog = Relax_catalog.Catalog
module Config = Relax_physical.Config
module O = Relax_optimizer
module W = Relax_workloads

let test_tpch_parses_22 () =
  let w = W.Tpch.workload () in
  Alcotest.(check int) "22 queries" 22 (List.length w)

let test_tpch_all_optimize () =
  let cat = W.Tpch.catalog ~scale:0.01 () in
  List.iter
    (fun (e : Query.entry) ->
      match e.stmt with
      | Select q ->
        let p = O.Optimizer.optimize cat Config.empty q in
        Alcotest.(check bool) (e.qid ^ " has finite cost") true
          (Float.is_finite p.cost && p.cost > 0.0)
      | Dml _ -> ())
    (W.Tpch.workload ())

let test_tpch_cardinality_ratios () =
  let cat = W.Tpch.catalog ~scale:0.1 () in
  (* lineitem ~ 4x orders ~ 40x customer, as in TPC-H *)
  let li = Catalog.rows cat "lineitem" and ord = Catalog.rows cat "orders" in
  let cust = Catalog.rows cat "customer" in
  Alcotest.(check bool) "lineitem/orders = 4" true
    (li /. ord > 3.5 && li /. ord < 4.5);
  Alcotest.(check bool) "orders/customer = 10" true
    (ord /. cust > 9.0 && ord /. cust < 11.0)

let test_tpch_subset () =
  Alcotest.(check int) "subset" 3 (List.length (W.Tpch.workload_subset [ 1; 5; 9 ]))

let test_star_schema_optimizes () =
  let schema = W.Star.schema ~scale:0.01 () in
  let w = W.Generator.workload ~seed:3 schema ~n:10 in
  Alcotest.(check int) "10 statements" 10 (List.length w);
  List.iter
    (fun (e : Query.entry) ->
      match e.stmt with
      | Select q ->
        let p = O.Optimizer.optimize schema.catalog Config.empty q in
        Alcotest.(check bool) "finite" true (Float.is_finite p.cost)
      | Dml _ -> ())
    w

let test_generator_deterministic () =
  let schema = W.Bench_db.schema ~scale:0.01 () in
  let w1 = W.Generator.workload ~seed:11 schema ~n:8 in
  let w2 = W.Generator.workload ~seed:11 schema ~n:8 in
  List.iter2
    (fun (a : Query.entry) (b : Query.entry) ->
      Alcotest.(check string) "same statement"
        (Relax_sql.Pretty.statement_to_string a.stmt)
        (Relax_sql.Pretty.statement_to_string b.stmt))
    w1 w2

let test_generator_seed_variation () =
  let schema = W.Bench_db.schema ~scale:0.01 () in
  let w1 = W.Generator.workload ~seed:11 schema ~n:8 in
  let w2 = W.Generator.workload ~seed:12 schema ~n:8 in
  let s w =
    String.concat ";"
      (List.map (fun (e : Query.entry) -> Relax_sql.Pretty.statement_to_string e.stmt) w)
  in
  Alcotest.(check bool) "different seeds differ" true (s w1 <> s w2)

let test_generator_update_fraction () =
  let schema = W.Bench_db.schema ~scale:0.01 () in
  let profile =
    { W.Generator.default_profile with update_fraction = 1.0 }
  in
  let w = W.Generator.workload ~seed:4 ~profile schema ~n:10 in
  Alcotest.(check int) "all DML" 10 (List.length (Query.dml_entries w))

let test_generator_queries_valid () =
  (* every generated statement must survive a print/parse round-trip *)
  let schema = W.Bench_db.tpch_schema ~scale:0.01 () in
  let profile = { W.Generator.default_profile with update_fraction = 0.3 } in
  let w = W.Generator.workload ~seed:17 ~profile schema ~n:20 in
  List.iter
    (fun (e : Query.entry) ->
      let s = Relax_sql.Pretty.statement_to_string e.stmt in
      match Relax_sql.Parser.statement s with
      | _ -> ()
      | exception ex ->
        Alcotest.failf "generated statement does not re-parse: %s (%s)" s
          (Printexc.to_string ex))
    w

let test_compress_merges_templates () =
  (* same template, different constants -> one representative *)
  let wl =
    List.mapi
      (fun i s -> Query.entry (Printf.sprintf "q%d" i) (Relax_sql.Parser.statement s))
      [
        "SELECT tenk1.value FROM tenk1 WHERE tenk1.unique1 = 5";
        "SELECT tenk1.value FROM tenk1 WHERE tenk1.unique1 = 99";
        "SELECT tenk1.value FROM tenk1 WHERE tenk1.unique1 = 1234";
        "SELECT tenk1.value FROM tenk1 WHERE tenk1.onepercent = 3";
        "UPDATE tenk1 SET value = value + 1 WHERE unique1 = 7";
        "UPDATE tenk1 SET value = value + 1 WHERE unique1 = 8";
      ]
  in
  let before, after = W.Compress.compression_ratio wl in
  Alcotest.(check int) "before" 6 before;
  (* three templates: two selects (different columns) + one update *)
  Alcotest.(check int) "after" 3 after;
  let compressed = W.Compress.compress wl in
  let rep = List.hd compressed in
  Fixtures.check_float "weights summed" 3.0 rep.weight

let test_compress_distinguishes_shapes () =
  let s1 = Relax_sql.Parser.statement "SELECT tenk1.value FROM tenk1 WHERE tenk1.unique1 = 5" in
  let s2 = Relax_sql.Parser.statement "SELECT tenk1.value FROM tenk1 WHERE tenk1.unique1 < 5" in
  Alcotest.(check bool) "eq vs range differ" true
    (W.Compress.signature s1 <> W.Compress.signature s2)

let test_compress_same_recommendation () =
  (* tuning the compressed workload must recommend as well as the full one *)
  let schema = W.Bench_db.schema ~scale:0.01 () in
  let base = W.Generator.workload ~seed:31 schema ~n:6 in
  (* duplicate with different ids: weights should absorb the repetition *)
  let wl =
    base
    @ List.map (fun (e : Query.entry) -> { e with qid = e.qid ^ "b" }) base
  in
  let compressed = W.Compress.compress wl in
  Alcotest.(check int) "halved" (List.length base) (List.length compressed);
  let tune w =
    Relax_tuner.Tuner.tune schema.catalog w
      (Relax_tuner.Tuner.default_options ~mode:Relax_tuner.Tuner.Indexes_only
         ~space_budget:infinity ())
  in
  let full = tune wl and comp = tune compressed in
  Fixtures.check_float ~eps:1e-6 "same optimal cost" full.optimal_cost
    comp.optimal_cost

let test_refresh_workload () =
  let rf = W.Tpch.refresh_workload ~scale:0.02 () in
  Alcotest.(check int) "four statements" 4 (List.length rf);
  Alcotest.(check bool) "all DML" true (List.length (Query.dml_entries rf) = 4)

let prop_generated_select_connected =
  QCheck.Test.make ~name:"generated multi-table queries are connected"
    ~count:30 QCheck.small_int (fun seed ->
      let schema = W.Bench_db.tpch_schema ~scale:0.01 () in
      let w = W.Generator.workload ~seed schema ~n:4 in
      List.for_all
        (fun (e : Query.entry) ->
          match e.stmt with
          | Query.Select q ->
            let n = List.length q.body.tables in
            n = 1 || List.length q.body.joins >= n - 1
          | Query.Dml _ -> true)
        w)

let prop_reparameterize_preserves_signature =
  QCheck.Test.make ~name:"reparameterize preserves the template signature"
    ~count:25 QCheck.small_int (fun seed ->
      let schema = W.Bench_db.tpch_schema ~scale:0.01 () in
      let profile = { W.Generator.default_profile with update_fraction = 0.2 } in
      let wl = W.Generator.workload ~seed ~profile schema ~n:5 in
      let rng = Relax_catalog.Rng.create (seed + 1) in
      let re = W.Generator.reparameterize schema rng wl in
      List.for_all2
        (fun (a : Query.entry) (b : Query.entry) ->
          W.Compress.signature a.stmt = W.Compress.signature b.stmt)
        wl re)

let prop_compress_idempotent =
  QCheck.Test.make ~name:"compression is idempotent" ~count:25
    QCheck.small_int (fun seed ->
      let schema = W.Bench_db.schema ~scale:0.01 () in
      let wl = W.Generator.workload ~seed schema ~n:10 in
      let once = W.Compress.compress wl in
      let twice = W.Compress.compress once in
      List.length once = List.length twice
      && List.for_all2
           (fun (a : Query.entry) (b : Query.entry) ->
             a.qid = b.qid && a.weight = b.weight)
           once twice)

let prop_compress_preserves_total_weight =
  QCheck.Test.make ~name:"compression preserves total weight" ~count:25
    QCheck.small_int (fun seed ->
      let schema = W.Bench_db.schema ~scale:0.01 () in
      let wl = W.Generator.workload ~seed schema ~n:12 in
      let total w =
        List.fold_left (fun a (e : Query.entry) -> a +. e.weight) 0.0 w
      in
      Float.abs (total wl -. total (W.Compress.compress wl)) < 1e-9)

let suite =
  [
    Alcotest.test_case "tpch: 22 queries" `Quick test_tpch_parses_22;
    Alcotest.test_case "tpch: all optimize" `Quick test_tpch_all_optimize;
    Alcotest.test_case "tpch: cardinality ratios" `Quick test_tpch_cardinality_ratios;
    Alcotest.test_case "tpch: subset" `Quick test_tpch_subset;
    Alcotest.test_case "star schema" `Quick test_star_schema_optimizes;
    Alcotest.test_case "generator deterministic" `Quick test_generator_deterministic;
    Alcotest.test_case "generator seeds differ" `Quick test_generator_seed_variation;
    Alcotest.test_case "generator update fraction" `Quick
      test_generator_update_fraction;
    Alcotest.test_case "generator round-trip" `Quick test_generator_queries_valid;
    Alcotest.test_case "compress: merges templates" `Quick test_compress_merges_templates;
    Alcotest.test_case "compress: distinguishes shapes" `Quick
      test_compress_distinguishes_shapes;
    Alcotest.test_case "compress: same recommendation" `Quick
      test_compress_same_recommendation;
    Alcotest.test_case "tpch refresh functions" `Quick test_refresh_workload;
    QCheck_alcotest.to_alcotest prop_generated_select_connected;
    QCheck_alcotest.to_alcotest prop_reparameterize_preserves_signature;
    QCheck_alcotest.to_alcotest prop_compress_idempotent;
    QCheck_alcotest.to_alcotest prop_compress_preserves_total_weight;
  ]
