(** Tests for the execution engine: data generation, exact evaluation,
    measured execution, and cost-model validation. *)

open Relax_sql.Types
module Query = Relax_sql.Query
module Index = Relax_physical.Index
module Config = Relax_physical.Config
module O = Relax_optimizer
module E = Relax_engine

let cat = lazy (Fixtures.small_catalog ())
let db = lazy (E.Data.create ~seed:3 (Lazy.force cat))

let rowset rel = E.Eval.of_relation (E.Data.relation (Lazy.force db) rel)

let test_generation_row_counts () =
  let r = E.Data.relation (Lazy.force db) "r" in
  Alcotest.(check int) "r rows" 100_000 (E.Data.row_count r);
  let s = E.Data.relation (Lazy.force db) "s" in
  Alcotest.(check int) "s rows" 1_000 (E.Data.row_count s)

let test_generation_deterministic () =
  let db1 = E.Data.create ~seed:3 (Lazy.force cat) in
  let db2 = E.Data.create ~seed:3 (Lazy.force cat) in
  let r1 = E.Data.relation db1 "s" and r2 = E.Data.relation db2 "s" in
  Alcotest.(check bool) "same rows" true (r1.rows = r2.rows)

let test_serial_column_is_rownum () =
  let r = E.Data.relation (Lazy.force db) "t" in
  let id_idx = E.Data.column_index r (Column.make "t" "id") in
  Array.iteri
    (fun i row -> Fixtures.check_float "serial" (float_of_int i) row.(id_idx))
    r.rows

let test_eval_range_filter () =
  let rs = rowset "t" in
  let range =
    Relax_sql.Predicate.range
      ~lo:(Relax_sql.Predicate.bound (VInt 10))
      ~hi:(Relax_sql.Predicate.bound (VInt 19))
      (Column.make "t" "id")
  in
  let out = E.Eval.filter rs ~ranges:[ range ] ~others:[] in
  Alcotest.(check int) "10 rows" 10 (E.Eval.cardinality out)

let test_eval_join_fk () =
  (* r.tid in [0, 99] joined to t.id (serial 0..99): every r row matches
     exactly one t row *)
  let r = rowset "r" and t = rowset "t" in
  let joins =
    [ Relax_sql.Predicate.make_join (Column.make "r" "tid") (Column.make "t" "id") ]
  in
  let joined = E.Eval.hash_join r t joins in
  Alcotest.(check int) "fk join preserves fact rows" (E.Eval.cardinality r)
    (E.Eval.cardinality joined)

let test_eval_group_count_total () =
  let t = rowset "t" in
  let grouped =
    E.Eval.group_by t
      ~keys:[ Column.make "t" "z" ]
      ~aggs:[ Query.Item_agg (Count, None) ]
  in
  (* counts over groups must sum back to the row count *)
  let count_idx = Array.length grouped.schema - 1 in
  let total =
    Array.fold_left (fun acc row -> acc +. row.(count_idx)) 0.0 grouped.rows
  in
  Fixtures.check_float "counts sum to rows" (float_of_int (E.Eval.cardinality t)) total

let test_eval_spjg_matches_manual () =
  let q =
    (Fixtures.parse_select "SELECT t.z FROM t WHERE t.id < 50 AND t.z >= 10").body
  in
  let out = E.Eval.spjg (Lazy.force db) q in
  (* brute-force the same condition *)
  let t = rowset "t" in
  let idi = E.Eval.index_of t (Column.make "t" "id") in
  let zi = E.Eval.index_of t (Column.make "t" "z") in
  let expected =
    Array.fold_left
      (fun acc row -> if row.(idi) < 50.0 && row.(zi) >= 10.0 then acc + 1 else acc)
      0 t.rows
  in
  Alcotest.(check int) "same count" expected (E.Eval.cardinality out)

let test_view_materialization () =
  let v =
    Relax_physical.View.make
      (Fixtures.parse_select "SELECT t.z, COUNT(*) FROM t GROUP BY t.z").body
  in
  let rel = E.Eval.materialize_view (Lazy.force db) v in
  Alcotest.(check bool) "registered" true
    (E.Data.mem (Lazy.force db) (Relax_physical.View.name v));
  Alcotest.(check bool) "groups <= 21 distinct z" true
    (E.Data.row_count rel <= 21);
  Alcotest.(check int) "two output columns" 2 (Array.length rel.schema)

(* --- measured execution --------------------------------------------------- *)

let measure ?(config = Config.empty) qs =
  let cat = Lazy.force cat in
  let db = Lazy.force db in
  List.iter (fun v -> ignore (E.Eval.materialize_view db v)) (Config.views config);
  let q = Fixtures.parse_select qs in
  let plan = O.Optimizer.optimize cat config q in
  let env = O.Env.make cat config in
  (plan, E.Measure.plan db env plan)

let test_measure_rows_exact () =
  let _, m = measure "SELECT t.z FROM t WHERE t.id < 25" in
  Alcotest.(check int) "exact rows" 25 (E.Eval.cardinality m.rows)

let test_measure_join_rows_exact () =
  let _, m =
    measure "SELECT r.a, t.z FROM r, t WHERE r.tid = t.id AND t.id < 10"
  in
  (* r.tid uniform over [0,99]: about 10% of r's rows survive *)
  let n = E.Eval.cardinality m.rows in
  Alcotest.(check bool) "about 10%" true (n > 8_000 && n < 12_000)

let test_measure_cost_positive_finite () =
  let plan, m = measure "SELECT r.a, r.b FROM r WHERE r.a = 5" in
  Alcotest.(check bool) "measured positive" true (m.cost > 0.0 && Float.is_finite m.cost);
  Alcotest.(check bool) "estimated positive" true (plan.cost > 0.0)

let test_measure_index_agrees_with_estimate_direction () =
  (* the measured costs must agree with the model that an index beats the
     scan for a selective predicate *)
  let qs = "SELECT r.a, r.b FROM r WHERE r.a = 5" in
  let _, m_scan = measure qs in
  let config = Config.of_indexes [ Index.on "r" [ "a" ] ~suffix:[ "b" ] ] in
  let _, m_idx = measure ~config qs in
  Alcotest.(check bool) "index wins measured too" true
    (m_idx.cost < m_scan.cost)

let test_validate_report () =
  let cat = Lazy.force cat in
  let db = Lazy.force db in
  let w =
    List.mapi
      (fun i s -> Query.entry (Printf.sprintf "q%d" (i + 1)) (Relax_sql.Parser.statement s))
      [
        "SELECT r.a, r.b FROM r WHERE r.a = 5";
        "SELECT r.d, SUM(r.a) FROM r GROUP BY r.d";
        "SELECT r.a, s.y FROM r, s WHERE r.sid = s.id AND r.a < 100";
      ]
  in
  let inst =
    Relax_tuner.Instrument.optimal_configuration cat ~base:Config.empty w
  in
  let base = E.Validate.run db Config.empty w in
  let opt = E.Validate.run db inst.optimal w in
  Alcotest.(check int) "all queries measured" 3 (List.length base.queries);
  (* the model's headline decision must hold on real data: the optimal
     configuration wins measured execution too *)
  Alcotest.(check bool)
    (Printf.sprintf "optimal measured %.1f < base measured %.1f"
       opt.measured_total base.measured_total)
    true
    (opt.measured_total < base.measured_total);
  Alcotest.(check bool) "q-error sane" true (E.Validate.q_error base < 5.0)

let suite =
  [
    Alcotest.test_case "generation: row counts" `Quick test_generation_row_counts;
    Alcotest.test_case "generation: deterministic" `Quick
      test_generation_deterministic;
    Alcotest.test_case "generation: serial column" `Quick test_serial_column_is_rownum;
    Alcotest.test_case "eval: range filter" `Quick test_eval_range_filter;
    Alcotest.test_case "eval: fk join" `Quick test_eval_join_fk;
    Alcotest.test_case "eval: group count total" `Quick test_eval_group_count_total;
    Alcotest.test_case "eval: spjg vs brute force" `Quick test_eval_spjg_matches_manual;
    Alcotest.test_case "view materialization" `Quick test_view_materialization;
    Alcotest.test_case "measure: exact rows" `Quick test_measure_rows_exact;
    Alcotest.test_case "measure: join rows" `Quick test_measure_join_rows_exact;
    Alcotest.test_case "measure: finite costs" `Quick test_measure_cost_positive_finite;
    Alcotest.test_case "measure: index wins on real data" `Quick
      test_measure_index_agrees_with_estimate_direction;
    Alcotest.test_case "validate: optimal wins measured" `Quick test_validate_report;
  ]
