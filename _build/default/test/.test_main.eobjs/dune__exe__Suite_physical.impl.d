test/suite_physical.ml: Alcotest Column Column_set Fixtures List Option QCheck QCheck_alcotest Relax_physical Relax_sql String
