test/suite_workloads.ml: Alcotest Fixtures Float List Printexc Printf QCheck QCheck_alcotest Relax_catalog Relax_optimizer Relax_physical Relax_sql Relax_tuner Relax_workloads String
