test/suite_tuner.ml: Alcotest Column Column_set Fixtures Lazy List Option Printf QCheck QCheck_alcotest Relax_optimizer Relax_physical Relax_sql Relax_tuner Unix
