test/suite_sql.ml: Alcotest Column Column_set Float List Printexc Printf QCheck QCheck_alcotest Relax_sql
