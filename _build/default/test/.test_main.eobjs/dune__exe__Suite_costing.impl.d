test/suite_costing.ml: Alcotest Astring_contains Column Fixtures Fmt Lazy List Relax_optimizer Relax_physical Relax_sql
