test/fixtures.ml: Alcotest Column Float Relax_catalog Relax_sql
