test/suite_catalog.ml: Alcotest Column Fixtures Float List QCheck QCheck_alcotest Relax_catalog Relax_sql
