test/suite_engine.ml: Alcotest Array Column Fixtures Float Lazy List Printf Relax_engine Relax_optimizer Relax_physical Relax_sql Relax_tuner
