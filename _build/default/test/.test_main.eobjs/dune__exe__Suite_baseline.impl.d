test/suite_baseline.ml: Alcotest Column Fixtures Lazy List Printf Relax_baseline Relax_optimizer Relax_physical Relax_sql Relax_tuner
