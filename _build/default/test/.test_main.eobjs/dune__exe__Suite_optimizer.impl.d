test/suite_optimizer.ml: Alcotest Column Column_set Fixtures Float Lazy List QCheck QCheck_alcotest Random Relax_optimizer Relax_physical Relax_sql String
