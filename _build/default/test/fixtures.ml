(** Shared test fixtures: a small deterministic catalog and helpers. *)

open Relax_sql.Types
module Catalog = Relax_catalog.Catalog
module Distribution = Relax_catalog.Distribution

let c = Column.make

(* A small star-ish schema: fact table r, dimensions s and t. *)
let small_catalog () =
  Catalog.create ~seed:7
    [
      Catalog.table "r" ~rows:100_000
        [
          Catalog.column "id" Int ~dist:Distribution.Serial;
          Catalog.column "a" Int ~dist:(Distribution.Uniform (0.0, 1000.0));
          Catalog.column "b" Int ~dist:(Distribution.Uniform (0.0, 100.0));
          Catalog.column "cc" Int ~dist:(Distribution.Uniform (0.0, 10000.0));
          Catalog.column "d" Int ~dist:(Distribution.Uniform (0.0, 50.0));
          Catalog.column "e" (Varchar 32);
          Catalog.column "sid" Int ~dist:(Distribution.Uniform (0.0, 999.0));
          Catalog.column "tid" Int ~dist:(Distribution.Uniform (0.0, 99.0));
        ];
      Catalog.table "s" ~rows:1_000
        [
          Catalog.column "id" Int ~dist:Distribution.Serial;
          Catalog.column "x" Int ~dist:(Distribution.Uniform (0.0, 500.0));
          Catalog.column "y" (Varchar 16);
        ];
      Catalog.table "t" ~rows:100
        [
          Catalog.column "id" Int ~dist:Distribution.Serial;
          Catalog.column "z" Int ~dist:(Distribution.Uniform (0.0, 20.0));
        ];
    ]

let parse_select s =
  match Relax_sql.Parser.statement s with
  | Relax_sql.Query.Select q -> q
  | _ -> Alcotest.fail "expected a select statement"

let parse_dml s =
  match Relax_sql.Parser.statement s with
  | Relax_sql.Query.Dml d -> d
  | _ -> Alcotest.fail "expected a DML statement"

let float_eq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float ?(eps = 1e-9) msg expected actual =
  if not (float_eq ~eps expected actual) then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual
