examples/tpch_relaxation.mli:
