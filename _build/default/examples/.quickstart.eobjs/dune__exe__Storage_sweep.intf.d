examples/storage_sweep.mli:
