examples/update_tuning.mli:
