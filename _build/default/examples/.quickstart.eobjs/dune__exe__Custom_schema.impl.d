examples/custom_schema.ml: Fmt Fun List Printf Relax_catalog Relax_physical Relax_sql Relax_tuner Relax_workloads
