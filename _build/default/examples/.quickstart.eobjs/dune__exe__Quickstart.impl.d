examples/quickstart.ml: Fmt Relax_catalog Relax_physical Relax_sql Relax_tuner
