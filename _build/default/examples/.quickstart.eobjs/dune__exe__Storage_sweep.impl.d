examples/storage_sweep.ml: Fmt List Relax_baseline Relax_physical Relax_tuner Relax_workloads
