examples/validate_recommendation.mli:
