examples/quickstart.mli:
