examples/tpch_relaxation.ml: Fmt List Relax_physical Relax_tuner Relax_workloads
