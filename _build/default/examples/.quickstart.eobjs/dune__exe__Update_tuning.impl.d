examples/update_tuning.ml: Float Fmt List Relax_physical Relax_tuner Relax_workloads
