(** Watching the relaxation at work on a TPC-H-like workload.

    This example reproduces, at example scale, the §3 story: derive the
    optimal configuration by intercepting optimizer requests, then relax it
    step by step until it fits the budget, and read the space/cost
    distribution that falls out as a by-product (the Figure 4 analysis a
    DBA uses to decide whether buying disk is worth it).

    Run with: [dune exec examples/tpch_relaxation.exe] *)

module Config = Relax_physical.Config
module Size_model = Relax_physical.Size_model
module T = Relax_tuner
module W = Relax_workloads

let () =
  let catalog = W.Tpch.catalog ~scale:0.02 () in
  let workload = W.Tpch.workload_subset [ 1; 3; 5; 6; 10; 12; 14; 15 ] in
  (* Step 1: instrument the optimizer alone, to see the requests. *)
  let inst =
    T.Instrument.optimal_configuration catalog ~base:Config.empty workload
  in
  Fmt.pr "=== §2: intercepted requests ===@.";
  List.iter
    (fun (s : T.Instrument.request_stats) ->
      Fmt.pr "  %-6s %3d index requests, %3d view requests@." s.qid
        s.index_requests s.view_requests)
    inst.stats;
  Fmt.pr "optimal configuration: %d structures, %a@.@."
    (Config.cardinal inst.optimal)
    Size_model.pp_bytes
    (Config.total_bytes catalog inst.optimal);
  (* Step 2: the full tuner, with a storage budget 1.5x the raw tables. *)
  let budget = Config.total_bytes catalog Config.empty *. 1.5 in
  let opts =
    {
      (T.Tuner.default_options ~mode:T.Tuner.Indexes_only ~space_budget:budget ())
      with
      max_iterations = 400;
    }
  in
  let r = T.Tuner.tune catalog workload opts in
  Fmt.pr "=== §3: relaxation-based search ===@.";
  Fmt.pr "%a@.@." T.Report.pp_summary r;
  (* Step 3: the DBA analysis.  How much does space buy? *)
  Fmt.pr "=== what would more disk buy? (Figure 4 analysis) ===@.";
  let frontier = T.Report.pareto_frontier r.frontier in
  let pct cost = 100.0 *. (1.0 -. (cost /. r.initial_cost)) in
  List.iter
    (fun (size, cost) ->
      Fmt.pr "  %-12s -> cost %8.1f  (improvement %5.1f%%)%s@."
        (Fmt.str "%a" Size_model.pp_bytes size)
        cost (pct cost)
        (if size <= budget then "   <= budget" else ""))
    frontier;
  match List.rev frontier with
  | (best_size, best_cost) :: _ ->
    Fmt.pr
      "@.going from the budget (%a) to %a would improve another %.1f%% — \
       that is the trade-off the relaxation search surfaces for free.@."
      Size_model.pp_bytes budget Size_model.pp_bytes best_size
      (pct best_cost -. r.improvement)
  | [] -> ()
