(** Bring your own database: describe a schema in text, generate a
    template-heavy workload, compress it, tune it, and emit the deployment
    DDL — the full user journey in one file.

    Run with: [dune exec examples/custom_schema.exe] *)

module T = Relax_tuner
module W = Relax_workloads
module Rng = Relax_catalog.Rng

let schema_text =
  {|
  CREATE TABLE customers ROWS 300000 (
    id INT SERIAL,
    region INT UNIFORM(0, 49),
    tier INT ZIPF(5, 0.6),
    balance FLOAT NORMAL(2500, 1200),
    name VARCHAR(32)
  );
  CREATE TABLE orders ROWS 3000000 (
    id INT SERIAL,
    customer INT REFERENCES customers(id),
    placed DATE UNIFORM(9500, 11000),
    amount FLOAT NORMAL(120, 60),
    status INT ZIPF(4, 0.5)
  );
  |}

let () =
  (* 1. Parse the schema: a catalog plus its foreign-key join graph. *)
  let catalog, joins = Relax_catalog.Schema_parser.parse schema_text in
  let schema = { W.Generator.catalog; joins } in
  (* 2. A production-like workload: 8 templates, each executed 25 times
     with different parameters. *)
  let templates =
    W.Generator.workload ~seed:5
      ~profile:
        { W.Generator.default_profile with max_tables = 2; update_fraction = 0.25 }
      schema ~n:8
  in
  let rng = Rng.create 6 in
  let full =
    List.concat_map
      (fun rep ->
        List.map
          (fun (e : Relax_sql.Query.entry) ->
            { e with qid = Printf.sprintf "%s#%d" e.qid rep })
          (if rep = 0 then templates
           else W.Generator.reparameterize schema rng templates))
      (List.init 25 Fun.id)
  in
  let before, after = W.Compress.compression_ratio full in
  Fmt.pr "workload: %d statements, %d templates after compression@." before
    after;
  let workload = W.Compress.compress full in
  (* 3. Tune under a budget of twice the raw data. *)
  let budget =
    2.0 *. Relax_physical.Config.total_bytes catalog Relax_physical.Config.empty
  in
  let r =
    T.Tuner.tune catalog workload
      {
        (T.Tuner.default_options ~mode:T.Tuner.Indexes_and_views
           ~space_budget:budget ())
        with
        max_iterations = 300;
      }
  in
  Fmt.pr "@.%a@." T.Report.pp_summary r;
  Fmt.pr "@.per-template effect of the recommendation:@.%a@."
    T.Report.pp_regressions r;
  (* 4. Ship it. *)
  Fmt.pr "@.-- deployment script@.%a@." Relax_physical.Ddl.pp_config
    r.recommended
