(** Quickstart: define a schema, write a workload in SQL, tune it.

    Run with: [dune exec examples/quickstart.exe] *)

module Catalog = Relax_catalog.Catalog
module D = Relax_catalog.Distribution
module Config = Relax_physical.Config
module T = Relax_tuner

let () =
  (* 1. Describe the database: table shapes and column value
     distributions.  No rows are ever stored — statistics (histograms,
     distinct counts) are built from the distributions, which is all a
     what-if tuning tool ever looks at. *)
  let catalog =
    Catalog.create ~seed:7
      [
        Catalog.table "users" ~rows:500_000
          [
            Catalog.column "id" Int ~dist:D.Serial;
            Catalog.column "country" Int ~dist:(D.Uniform (0.0, 99.0));
            Catalog.column "age" Int ~dist:(D.Normal { mean = 35.0; stddev = 12.0 });
            Catalog.column "name" (Varchar 40);
            Catalog.column "karma" Int ~dist:(D.Zipf { n = 10_000; skew = 1.1 });
          ];
        Catalog.table "posts" ~rows:5_000_000
          [
            Catalog.column "id" Int ~dist:D.Serial;
            Catalog.column "author" Int ~dist:(D.Uniform (0.0, 499_999.0));
            Catalog.column "score" Int ~dist:(D.Zipf { n = 1000; skew = 0.9 });
            Catalog.column "created" Date ~dist:(D.Uniform (9000.0, 11000.0));
            Catalog.column "body" (Varchar 200);
          ];
      ]
  in
  (* 2. The workload: plain SQL (the SPJG dialect of the paper). *)
  let workload =
    Relax_sql.Parser.workload
      {|
      SELECT users.name, users.karma FROM users WHERE users.country = 42;
      SELECT posts.id, posts.score FROM posts
        WHERE posts.created >= 10500 AND posts.score > 100;
      SELECT users.country, COUNT(*), SUM(posts.score)
        FROM users, posts
        WHERE users.id = posts.author AND posts.created >= 10000
        GROUP BY users.country;
      UPDATE posts SET score = score + 1 WHERE id = 12345;
      |}
  in
  (* 3. Tune under a 256 MB budget, recommending indexes and views. *)
  let opts =
    T.Tuner.default_options ~mode:T.Tuner.Indexes_and_views
      ~space_budget:(256.0 *. 1024.0 *. 1024.0) ()
  in
  let result = T.Tuner.tune catalog workload opts in
  (* 4. Read the results. *)
  Fmt.pr "%a@." T.Report.pp_summary result;
  Fmt.pr "@.Recommended physical design:@.%a@." Config.pp result.recommended;
  Fmt.pr "@.%a@." T.Report.pp_frontier result
