(** Sweeping the storage constraint (the Figure 10 experiment as an
    application): compare the relaxation tuner against the bottom-up
    baseline across budgets, on the same workload.

    Run with: [dune exec examples/storage_sweep.exe] *)

module Config = Relax_physical.Config
module Size_model = Relax_physical.Size_model
module T = Relax_tuner
module B = Relax_baseline
module W = Relax_workloads

let () =
  let catalog = W.Tpch.catalog ~scale:0.02 () in
  let workload = W.Tpch.workload_subset [ 1; 3; 6; 10; 14; 18 ] in
  let min_size = Config.total_bytes catalog Config.empty in
  (* the optimal (unconstrained) configuration defines the 100% point *)
  let optimal =
    T.Tuner.tune catalog workload
      {
        (T.Tuner.default_options ~mode:T.Tuner.Indexes_only
           ~space_budget:infinity ())
        with
        max_iterations = 1;
      }
  in
  Fmt.pr "tables only: %a;  optimal configuration: %a@.@." Size_model.pp_bytes
    min_size Size_model.pp_bytes optimal.optimal_size;
  Fmt.pr "%-22s %12s %12s@." "budget" "PTT (relax)" "CTT (greedy)";
  List.iter
    (fun pct ->
      let budget =
        min_size +. ((optimal.optimal_size -. min_size) *. pct /. 100.0)
      in
      let ptt =
        T.Tuner.tune catalog workload
          {
            (T.Tuner.default_options ~mode:T.Tuner.Indexes_only
               ~space_budget:budget ())
            with
            max_iterations = 250;
          }
      in
      let ctt =
        B.Ctt.tune catalog workload
          (B.Ctt.default_options ~with_views:false ~space_budget:budget ())
      in
      Fmt.pr "%3.0f%% of optimal (%a) %11.1f%% %11.1f%%@." pct
        Size_model.pp_bytes budget ptt.improvement ctt.improvement)
    [ 5.0; 15.0; 30.0; 50.0; 75.0; 100.0 ];
  Fmt.pr
    "@.The relaxation tuner degrades gracefully under tight budgets \
     because it shrinks the optimal configuration instead of growing an \
     empty one; the greedy baseline loses the most exactly where tuning \
     matters most.@."
