(** Validating a recommendation before deploying it.

    The tuner works entirely on optimizer estimates (like the paper's
    tools).  Before acting on a recommendation, a cautious DBA can use the
    execution engine to generate data matching the catalog's statistics,
    run the recommended plans against it, and check that the promised
    improvement survives contact with real rows.

    Run with: [dune exec examples/validate_recommendation.exe] *)

module Config = Relax_physical.Config
module T = Relax_tuner
module E = Relax_engine
module W = Relax_workloads

let () =
  let catalog = W.Tpch.catalog ~scale:0.005 () in
  let workload = W.Tpch.workload_subset [ 1; 6; 10; 14; 15 ] in
  (* 1. Tune on estimates. *)
  let result =
    T.Tuner.tune catalog workload
      (T.Tuner.default_options ~mode:T.Tuner.Indexes_and_views
         ~space_budget:infinity ())
  in
  Fmt.pr "estimated improvement: %.1f%%@." result.improvement;
  (* 2. Generate rows consistent with the statistics and execute. *)
  let db = E.Data.create ~seed:2024 catalog in
  let before = E.Validate.run db Config.empty workload in
  let after = E.Validate.run db result.recommended workload in
  Fmt.pr "@.before (no structures):@.%a@." E.Validate.pp_report before;
  Fmt.pr "@.after (recommended):@.%a@." E.Validate.pp_report after;
  let measured_improvement =
    100.0 *. (1.0 -. (after.measured_total /. before.measured_total))
  in
  Fmt.pr "@.measured improvement: %.1f%% (estimated %.1f%%)@."
    measured_improvement result.improvement;
  Fmt.pr "winner preserved on real data: %b@."
    (E.Validate.same_winner db Config.empty result.recommended workload);
  Fmt.pr "cardinality q-error: %.2f@." (E.Validate.q_error before)
