(** Tuning a mixed select/update workload (§3.6).

    Indexes stop being free when the workload writes: every index on an
    updated table must be maintained.  This example shows (a) how the
    recommendation changes as the update share grows, and (b) the §3.6
    lower bound, which tells the DBA how far any configuration could
    possibly go.

    Run with: [dune exec examples/update_tuning.exe] *)

module Config = Relax_physical.Config
module T = Relax_tuner
module W = Relax_workloads

let () =
  let schema = W.Bench_db.schema ~scale:0.02 () in
  let budget = 64.0 *. 1024.0 *. 1024.0 in
  Fmt.pr
    "update share | improvement | structures | lower-bound gap | note@.";
  List.iter
    (fun update_fraction ->
      let profile =
        { W.Generator.default_profile with update_fraction; max_tables = 2 }
      in
      let workload = W.Generator.workload ~seed:9 ~profile schema ~n:12 in
      let opts =
        {
          (T.Tuner.default_options ~mode:T.Tuner.Indexes_only
             ~space_budget:budget ())
          with
          max_iterations = 250;
        }
      in
      let r = T.Tuner.tune schema.catalog workload opts in
      let gap =
        100.0 *. (r.recommended_cost -. r.lower_bound)
        /. Float.max 1e-9 r.recommended_cost
      in
      Fmt.pr "      %3.0f%%   |   %6.1f%%   |    %3d     |     %5.1f%%      | %s@."
        (100.0 *. update_fraction)
        r.improvement
        (Config.cardinal r.recommended)
        gap
        (if update_fraction = 0.0 then "reads only: every useful index pays"
         else if update_fraction < 0.5 then
           "maintenance trims the wide indexes"
         else "few indexes survive heavy writes"))
    [ 0.0; 0.25; 0.5; 0.75 ];
  Fmt.pr
    "@.The recommendation shrinks as writes grow: the §3.6 update shells \
     charge every index on an updated table, so the relaxation keeps \
     removing structures even after the budget is met, whenever removal \
     lowers total cost.@."
