(** The benchmark harness: regenerates every table and figure of the
    paper's evaluation (§4) on the simulated substrate.

    Usage: [main.exe [table1|table2|table3|fig3|fig4|fig6|fig7|fig8|fig9|
    fig10|micro|all]].  With no argument (or [all]) every experiment runs.

    Absolute numbers differ from the paper's (different optimizer, cost
    model, and hardware); the claims being reproduced are the {e shapes}:
    who wins, by roughly what factor, and where the crossovers fall.  Each
    section header states the expectation. *)

module Query = Relax_sql.Query
module Config = Relax_physical.Config
module Size_model = Relax_physical.Size_model
module Catalog = Relax_catalog.Catalog
module O = Relax_optimizer
module T = Relax_tuner
module B = Relax_baseline
module W = Relax_workloads
module D = Relax_daemon



let section title expectation =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 78 '=') title (String.make 78 '=');
  Printf.printf "paper expectation: %s\n\n" expectation

let now () = Relax_obs.Clock.now ()

(* experiment-wide defaults, chosen so `all` completes in minutes *)
let tpch_scale = 0.02
let pool_size = 8
let ptt_iterations = 200

let tpch_cat = lazy (W.Tpch.catalog ~scale:tpch_scale ())
let ds1 = lazy (W.Star.schema ~scale:0.02 ())
let bench_db = lazy (W.Bench_db.schema ~scale:0.02 ())

(* --jobs N (parsed below); absent = RELAX_JOBS or the domain count *)
let jobs_flag = ref None

(* --profile[=FILE]: run every experiment under a profiling recorder and
   write a Chrome trace-event file per experiment (Perfetto-loadable) *)
let profile_flag = ref None

let effective_jobs () =
  match !jobs_flag with
  | Some j -> j
  | None -> Relax_parallel.Pool.default_jobs ()

(* Host self-description stamped into every BENCH_*.json: wall-clock
   numbers are only comparable between hosts of the same shape, and
   perfdiff uses this block to decide which gates stay hard (see
   [Relax_obs.Perfdiff]). *)
let host_json () =
  let open Relax_obs.Json in
  Obj
    [
      ("recommended_domain_count", Int (Domain.recommended_domain_count ()));
      ("ocaml_version", String Sys.ocaml_version);
      ("os_type", String Sys.os_type);
      ("word_size", Int Sys.word_size);
    ]

(* --validate: attach the differential invariant checker to every PTT run;
   any violation anywhere makes the whole harness exit non-zero *)
let validate_flag = ref false
let check_iterations = ref 0
let check_violations = ref 0

let ptt ?(mode = T.Tuner.Indexes_and_views) ?(budget = infinity)
    ?(iters = ptt_iterations) cat w =
  let opts = T.Tuner.default_options ~mode ~space_budget:budget () in
  let checker =
    if !validate_flag then
      Some
        (Relax_check.Checker.create cat ~workload:w ~protected:Config.empty ())
    else None
  in
  let r =
    T.Tuner.tune cat w
      {
        opts with
        max_iterations = iters;
        jobs = effective_jobs ();
        on_iteration = Option.map Relax_check.Checker.hook checker;
      }
  in
  (match checker with
  | None -> ()
  | Some c ->
    let rep = Relax_check.Checker.report c in
    check_iterations := !check_iterations + rep.iterations_checked;
    check_violations := !check_violations + List.length rep.violations;
    if rep.violations <> [] then
      Printf.printf "  !! differential check: %s\n"
        (Fmt.str "%a" Relax_check.Checker.pp_report rep));
  r

let ctt ?(views = true) ?(budget = infinity) cat w =
  B.Ctt.tune cat w (B.Ctt.default_options ~with_views:views ~space_budget:budget ())

(* ------------------------------------------------------------------ *)
(* Table 1: index and view requests for the TPC-H workload             *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table 1: index and view requests, 22-query TPC-H workload"
    "the number of intercepted requests (= simulated structures) stays \
     small even for this complex workload";
  let cat = Lazy.force tpch_cat in
  let w = W.Tpch.workload () in
  let t0 = now () in
  let inst = T.Instrument.optimal_configuration cat ~base:Config.empty w in
  Printf.printf "%-8s %14s %14s\n" "query" "#index reqs" "#view reqs";
  let ti, tv =
    List.fold_left
      (fun (ti, tv) (s : T.Instrument.request_stats) ->
        Printf.printf "%-8s %14d %14d\n" s.qid s.index_requests s.view_requests;
        (ti + s.index_requests, tv + s.view_requests))
      (0, 0) inst.stats
  in
  Printf.printf "%-8s %14d %14d\n" "total" ti tv;
  Printf.printf
    "\noptimal configuration: %d structures, %s (derived in %.2f s, %d \
     instrumentation passes)\n"
    (Config.cardinal inst.optimal)
    (Fmt.str "%a" Size_model.pp_bytes (Config.total_bytes cat inst.optimal))
    (now () -. t0) inst.passes

(* ------------------------------------------------------------------ *)
(* Table 2: databases and workloads                                    *)
(* ------------------------------------------------------------------ *)

let db_bytes cat = Config.total_bytes cat Config.empty

let table2 () =
  section "Table 2: databases and workloads used in the experiments"
    "a mix of benchmark, synthetic decision-support and synthetic OLTP \
     databases with generated and fixed workloads";
  Printf.printf "%-10s %8s %12s  %s\n" "database" "#tables" "size" "workloads";
  let row name cat desc =
    Printf.printf "%-10s %8d %12s  %s\n" name
      (List.length (Catalog.table_names cat))
      (Fmt.str "%a" Size_model.pp_bytes (db_bytes cat))
      desc
  in
  row "TPC-H" (Lazy.force tpch_cat)
    "22 fixed queries + generated select/update pools";
  row "DS1" (Lazy.force ds1).catalog "generated star-join pools";
  row "Bench" (Lazy.force bench_db).catalog
    "generated single-table/2-join OLTP pools";
  Printf.printf
    "\nper-pool settings: %d workloads x ~8 statements, modes = indexes | \
     indexes+views, select-only and 25%%-update variants\n"
    pool_size

(* ------------------------------------------------------------------ *)
(* workload pools shared by Table 3 / Fig 8 / Fig 9                    *)
(* ------------------------------------------------------------------ *)

type pooled = {
  label : string;
  cat : Catalog.t;
  workload : Query.workload;
}

let pool ~db_label (schema : W.Generator.schema) ~update_fraction ~seed0 n =
  List.init n (fun i ->
      let seed = seed0 + i in
      let profile =
        { W.Generator.default_profile with update_fraction; max_tables = 3 }
      in
      {
        label = Printf.sprintf "%s-w%02d" db_label (i + 1);
        cat = schema.catalog;
        workload = W.Generator.workload ~seed ~profile schema ~n:8;
      })

let tpch_fixed_pools () =
  (* slices of the 22-query workload act as fixed TPC-H workloads *)
  let cat = Lazy.force tpch_cat in
  [
    ("TPCH-q1..8", [ 1; 2; 3; 4; 5; 6; 7; 8 ]);
    ("TPCH-q9..16", [ 9; 10; 11; 12; 13; 14; 15; 16 ]);
    ("TPCH-q17..22", [ 17; 18; 19; 20; 21; 22 ]);
  ]
  |> List.map (fun (label, nums) ->
         { label; cat; workload = W.Tpch.workload_subset nums })

let select_pools () =
  tpch_fixed_pools ()
  @ pool ~db_label:"TPCH" (W.Bench_db.tpch_schema ~scale:tpch_scale ())
      ~update_fraction:0.0 ~seed0:100 (pool_size - 3)
  @ pool ~db_label:"DS1" (Lazy.force ds1) ~update_fraction:0.0 ~seed0:200
      pool_size
  @ pool ~db_label:"Bench" (Lazy.force bench_db) ~update_fraction:0.0
      ~seed0:300 pool_size

let update_pools () =
  (* the classic TPC-H maintenance mix: queries plus the dbgen refresh
     functions RF1/RF2 *)
  [
    {
      label = "TPCH-RF";
      cat = Lazy.force tpch_cat;
      workload =
        W.Tpch.workload_subset [ 1; 3; 6; 14 ]
        @ W.Tpch.refresh_workload ~scale:tpch_scale ();
    };
  ]
  @ pool ~db_label:"TPCH" (W.Bench_db.tpch_schema ~scale:tpch_scale ())
    ~update_fraction:0.25 ~seed0:400 (pool_size - 1)
  @ pool ~db_label:"DS1" (Lazy.force ds1) ~update_fraction:0.25 ~seed0:500
      pool_size
  @ pool ~db_label:"Bench" (Lazy.force bench_db) ~update_fraction:0.25
      ~seed0:600 pool_size

(* ------------------------------------------------------------------ *)
(* Table 3: tuning time for the most expensive workloads               *)
(* ------------------------------------------------------------------ *)

let table3 () =
  section "Table 3: tuning time, CTT vs PTT (no constraints)"
    "PTT reaches the optimal configuration almost immediately (the \
     starting point is the goal); CTT spends its time in candidate \
     scoring, merging and greedy enumeration";
  let rows =
    List.map
      (fun p ->
        let t0 = now () in
        let c = ctt ~views:true p.cat p.workload in
        let ctt_time = now () -. t0 in
        let t0 = now () in
        let r = ptt ~mode:T.Tuner.Indexes_and_views ~iters:1 p.cat p.workload in
        let ptt_time = now () -. t0 in
        (p.label, ctt_time, ptt_time, c.improvement, r.improvement))
      (select_pools ())
  in
  let top =
    List.sort (fun (_, a, _, _, _) (_, b, _, _, _) -> Float.compare b a) rows
    |> List.filteri (fun i _ -> i < 10)
  in
  Printf.printf "%-14s %10s %10s %10s %10s\n" "workload" "time CTT" "time PTT"
    "impr CTT" "impr PTT";
  List.iter
    (fun (label, tc, tp, ic, ip) ->
      Printf.printf "%-14s %9.2fs %9.2fs %9.1f%% %9.1f%%\n" label tc tp ic ip)
    top

(* ------------------------------------------------------------------ *)
(* Figure 3: bounding the improvement of the final configuration       *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  section
    "Figure 3: best configuration found by the bottom-up tool over time"
    "the bottom-up tool improves in steps and plateaus long before it \
     terminates; knowing the optimal configuration's cost (the PTT bound) \
     would justify stopping much earlier";
  let cat = Lazy.force tpch_cat in
  (* a complex 30-statement workload: the 22 fixed queries + 8 generated *)
  let extra =
    W.Generator.workload ~seed:42
      ~profile:{ W.Generator.default_profile with max_tables = 4 }
      (W.Bench_db.tpch_schema ~scale:tpch_scale ())
      ~n:8
    |> List.map (fun (e : Query.entry) -> { e with qid = "x" ^ e.qid })
  in
  let w = W.Tpch.workload () @ extra in
  let c = ctt ~views:true cat w in
  let r = ptt ~mode:T.Tuner.Indexes_and_views ~iters:1 cat w in
  let bound_impr =
    T.Tuner.improvement ~initial:c.initial_cost ~recommended:r.optimal_cost
  in
  Printf.printf "%-18s %14s\n" "optimizer calls" "improvement";
  List.iter
    (fun (calls, cost) ->
      Printf.printf "%-18d %13.1f%%\n" calls
        (100.0 *. (1.0 -. (cost /. c.initial_cost))))
    c.trace;
  Printf.printf "\noptimal-configuration bound (PTT): %.1f%%\n" bound_impr;
  Printf.printf
    "-> once the trace is within a few points of the bound, tuning can stop\n";
  (* the relaxation tuner's anytime behaviour on the same workload, under a
     tight budget: it starts from a valid configuration almost immediately
     and refines, instead of climbing from zero *)
  let budget = db_bytes cat *. 2.5 in
  let rc =
    let opts =
      {
        (T.Tuner.default_options ~mode:T.Tuner.Indexes_only ~space_budget:budget ())
        with
        max_iterations = 400;
        (* §3.5: batching transformations reaches the first valid
           configuration quickly, making the anytime curve visible *)
        transforms_per_iteration = 4;
      }
    in
    T.Tuner.tune cat w opts
  in
  Printf.printf
    "\nPTT under a %s budget reaches its final quality in %d iterations:\n"
    (Fmt.str "%a" Size_model.pp_bytes budget)
    (match List.rev rc.best_trace with (i, _) :: _ -> i | [] -> 0);
  List.iter
    (fun (i, cost) ->
      Printf.printf "  iteration %-6d best valid improvement %5.1f%%\n" i
        (100.0 *. (1.0 -. (cost /. c.initial_cost))))
    rc.best_trace

(* ------------------------------------------------------------------ *)
(* Figure 4: relaxation-based search on a TPC-H database               *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  section "Figure 4: space/cost distribution of relaxed configurations"
    "cost decreases with space; a knee appears past which extra storage \
     buys little (the paper's 'more than 4GB improves only 3%')";
  let cat = Lazy.force tpch_cat in
  let w = W.Tpch.workload_subset [ 1; 3; 5; 6; 10; 12; 14; 15; 18; 19 ] in
  let base_size = db_bytes cat in
  (* the paper's Figure 4 tunes TPC-H for indexes with a budget of ~1.4x
     the initial configuration; a tight budget forces the relaxation to walk
     the whole space/cost curve down, exposing the distribution as a
     by-product of the search *)
  let budget = base_size *. 1.4 in
  let r = ptt ~mode:T.Tuner.Indexes_only ~budget ~iters:500 cat w in
  Printf.printf "initial: %s, cost %.1f\n"
    (Fmt.str "%a" Size_model.pp_bytes r.initial_size)
    r.initial_cost;
  Printf.printf "optimal: %s, cost %.1f\n"
    (Fmt.str "%a" Size_model.pp_bytes r.optimal_size)
    r.optimal_cost;
  Printf.printf "budget : %s -> recommended cost %.1f (%.1f%% improvement)\n\n"
    (Fmt.str "%a" Size_model.pp_bytes budget)
    r.recommended_cost r.improvement;
  Printf.printf "%-14s %12s\n" "size" "best cost";
  let frontier = T.Report.pareto_frontier r.frontier in
  List.iter
    (fun (s, c) ->
      Printf.printf "%-14s %12.1f\n" (Fmt.str "%a" Size_model.pp_bytes s) c)
    frontier

(* ------------------------------------------------------------------ *)
(* Figure 6: candidate transformations per iteration                   *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  section "Figure 6: candidate transformations at each search iteration"
    "each iteration exposes hundreds of new applicable transformations: \
     exhaustive search is infeasible, ranking heuristics are essential";
  let cat = Lazy.force tpch_cat in
  let w = W.Tpch.workload_subset [ 1; 3; 5; 6; 10; 12; 14; 15 ] in
  let r =
    ptt ~mode:T.Tuner.Indexes_and_views ~budget:(db_bytes cat *. 1.3)
      ~iters:60 cat w
  in
  Printf.printf "%-10s %26s\n" "iteration" "available transformations";
  List.iteri
    (fun i n -> if i mod 4 = 0 then Printf.printf "%-10d %26d\n" (i + 1) n)
    r.candidates_per_iteration

(* ------------------------------------------------------------------ *)
(* Figure 7: validating the execution-cost upper bounds                *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  section "Figure 7: cost upper bounds vs true re-optimized costs"
    "the §3.3.2 bound is a true upper bound and stays close to the \
     re-optimized cost (it patches plans locally instead of calling the \
     optimizer)";
  let cat = Lazy.force tpch_cat in
  let w = W.Tpch.workload_subset [ 1; 3; 6; 10; 14; 15 ] in
  let inst = T.Instrument.optimal_configuration cat ~base:Config.empty w in
  let prepared = T.Search.prepare w in
  let whatif = O.Whatif.create cat in
  let plans =
    List.map
      (fun (qid, _, sq) -> (qid, sq, O.Whatif.plan_select whatif inst.optimal ~qid sq))
      prepared.selects
  in
  let est v = O.Cardinality.spjg (O.Env.make cat Config.empty) (Relax_physical.View.definition v) in
  let transforms = T.Transform.enumerate inst.optimal in
  let checked = ref 0 and violations = ref 0 and slack_sum = ref 0.0 in
  Printf.printf "%-34s %12s %12s %8s\n" "transformation (sample)" "bound"
    "true cost" "slack";
  List.iteri
    (fun k tr ->
      match T.Transform.apply ~estimate_rows:est inst.optimal tr with
      | None -> ()
      | Some config' ->
        let ctx : T.Cost_bound.context =
          {
            env' = O.Env.make cat config';
            old_env = O.Env.make cat inst.optimal;
            removed_indexes = T.Transform.removed_indexes inst.optimal tr;
            removed_views = T.Transform.removed_views tr;
            view_merge =
              (match tr with
              | Merge_views (a, b) -> (
                match Relax_physical.View.merge a b with
                | Some m -> Some (m, a, b)
                | None -> None)
              | _ -> None);
            cbv =
              (fun v ->
                (O.Optimizer.optimize cat Config.empty
                   { Query.body = Relax_physical.View.definition v; order_by = [] })
                  .cost);
            expands = T.Transform.adds_structures tr;
          }
        in
        List.iter
          (fun (_, sq, plan) ->
            if T.Cost_bound.plan_affected ctx plan then begin
              let bound = T.Cost_bound.query_bound ctx plan in
              let true_cost = (O.Optimizer.optimize cat config' sq).cost in
              incr checked;
              if bound < true_cost -. 1e-6 then incr violations;
              slack_sum := !slack_sum +. ((bound -. true_cost) /. true_cost);
              if !checked <= 12 then
                Printf.printf "%-34s %12.1f %12.1f %7.1f%%\n"
                  (let s = Fmt.str "%a" T.Transform.pp tr in
                   if String.length s > 34 then String.sub s 0 34 else s)
                  bound true_cost
                  (100.0 *. (bound -. true_cost) /. true_cost)
            end)
          plans;
        ignore k)
    transforms;
  Printf.printf
    "\nchecked %d (transformation, affected query) pairs: %d bound \
     violations, mean slack %.1f%%\n"
    !checked !violations
    (100.0 *. !slack_sum /. float_of_int (max 1 !checked))

(* ------------------------------------------------------------------ *)
(* Figures 8 and 9: PTT vs CTT across workload pools                   *)
(* ------------------------------------------------------------------ *)

let delta_improvement_run ~title ~expectation ~pools ~ptt_iters () =
  section title expectation;
  List.iter
    (fun (mode_label, views) ->
      Printf.printf "--- %s ---\n" mode_label;
      Printf.printf "%-14s %10s %10s %12s\n" "workload" "impr CTT" "impr PTT"
        "delta";
      let deltas =
        List.map
          (fun p ->
            let c = ctt ~views p.cat p.workload in
            let mode =
              if views then T.Tuner.Indexes_and_views else T.Tuner.Indexes_only
            in
            let r = ptt ~mode ~iters:ptt_iters p.cat p.workload in
            let delta = r.improvement -. c.improvement in
            Printf.printf "%-14s %9.1f%% %9.1f%% %+11.1f%%\n" p.label
              c.improvement r.improvement delta;
            delta)
          pools
      in
      let n = List.length deltas in
      let wins = List.length (List.filter (fun d -> d > 1.0) deltas) in
      let ties =
        List.length (List.filter (fun d -> Float.abs d <= 1.0) deltas)
      in
      let losses = List.length (List.filter (fun d -> d < -1.0) deltas) in
      let worst = List.fold_left Float.min infinity deltas in
      Printf.printf
        "summary: %d/%d PTT better (>1%%), %d/%d within 1%%, %d/%d worse; \
         worst delta %+.1f%%\n\n"
        wins n ties n losses n worst)
    [ ("indexes only", false); ("indexes and views", true) ]

let fig8 () =
  delta_improvement_run
    ~title:
      "Figure 8: quality of recommendations, PTT vs CTT (no constraints)"
    ~expectation:
      "most workloads tie or favour PTT; a long tail of large PTT wins, \
       especially when views are recommended; PTT rarely loses and never \
       by much"
    ~pools:(select_pools ()) ~ptt_iters:1 ()

let fig9 () =
  delta_improvement_run
    ~title:"Figure 9: quality of recommendations for UPDATE workloads"
    ~expectation:
      "with update costs the optimal configuration is no longer free: PTT \
       searches under a time bound; a large share of workloads still tie \
       or favour PTT, and losses stay within a few percent"
    ~pools:(update_pools ()) ~ptt_iters:ptt_iterations ()

(* ------------------------------------------------------------------ *)
(* Figure 10: quality under varying storage constraints                *)
(* ------------------------------------------------------------------ *)

let fig10 () =
  section "Figure 10: recommendation quality vs storage constraint"
    "PTT's quality grows monotonically with available space; CTT's curve \
     is below PTT's and can dip when slightly more space is available \
     (greedy artifacts)";
  (* indexes-only: index sizes create the real space/benefit trade-off the
     sweep is about (with views enabled, tiny aggregate views saturate the
     quality at every budget on this scaled-down database) *)
  let run label cat w =
    Printf.printf "--- %s ---\n" label;
    let r_opt = ptt ~mode:T.Tuner.Indexes_only ~iters:1 cat w in
    let min_size = db_bytes cat in
    let max_size = r_opt.optimal_size in
    Printf.printf "0%% = %s (tables only), 100%% = %s (optimal)\n"
      (Fmt.str "%a" Size_model.pp_bytes min_size)
      (Fmt.str "%a" Size_model.pp_bytes max_size);
    Printf.printf "%-10s %10s %10s\n" "space" "impr CTT" "impr PTT";
    List.iter
      (fun pct ->
        let budget = min_size +. ((max_size -. min_size) *. pct /. 100.0) in
        let c = ctt ~views:false ~budget cat w in
        let r = ptt ~mode:T.Tuner.Indexes_only ~budget ~iters:250 cat w in
        Printf.printf "%9.0f%% %9.1f%% %9.1f%%\n" pct c.improvement
          r.improvement)
      [ 5.0; 10.0; 20.0; 35.0; 50.0; 65.0; 80.0; 100.0 ]
  in
  run "TPC-H (8 fixed queries)" (Lazy.force tpch_cat)
    (W.Tpch.workload_subset [ 1; 3; 5; 6; 10; 12; 14; 15 ]);
  let ds1 = Lazy.force ds1 in
  run "DS1 (generated)" ds1.catalog
    (W.Generator.workload ~seed:77 ds1 ~n:8)

(* ------------------------------------------------------------------ *)
(* Workload compression                                                 *)
(* ------------------------------------------------------------------ *)

let compress_bench () =
  section "Workload compression: tuning time vs quality"
    "not a paper figure — the AutoAdmin-lineage scalability tool: large \
     workloads repeat a few templates with different constants, so \
     compressing to weighted representatives cuts tuning time at equal \
     recommendation quality";
  let schema = W.Bench_db.tpch_schema ~scale:tpch_scale () in
  (* 120 statements from 12 templates: each template re-parameterized 10x
     with fresh constants, as production workloads repeat *)
  let base = W.Generator.workload ~seed:800 schema ~n:12 in
  let rng = Relax_catalog.Rng.create 801 in
  let big =
    List.concat_map
      (fun rep ->
        List.map
          (fun (e : Query.entry) -> { e with qid = Printf.sprintf "%s-r%d" e.qid rep })
          (if rep = 0 then base else W.Generator.reparameterize schema rng base))
      (List.init 10 Fun.id)
  in
  let before, after = W.Compress.compression_ratio big in
  Printf.printf "workload: %d statements, %d distinct templates\n" before after;
  let run label w =
    let t0 = now () in
    let r = ptt ~mode:T.Tuner.Indexes_only ~iters:150 schema.catalog w in
    Printf.printf "%-12s %4d stmts  impr %5.1f%%  optimal cost %10.1f  %6.2fs\n"
      label (List.length w) r.improvement r.optimal_cost (now () -. t0)
  in
  run "full" big;
  run "compressed" (W.Compress.compress big)

(* ------------------------------------------------------------------ *)
(* Cost-model validation against real execution                        *)
(* ------------------------------------------------------------------ *)

let validate () =
  section "Validation: estimated costs vs measured execution"
    "not a paper figure — executes the chosen plans against generated rows \
     (the paper ran on SQL Server, so its cost model was trusted); the \
     model must rank configurations the way real execution does, and \
     cardinality q-error should stay small";
  let cat = W.Tpch.catalog ~scale:0.005 () in
  let db = Relax_engine.Data.create ~seed:11 cat in
  let w = W.Tpch.workload_subset [ 1; 3; 6; 10; 14; 15 ] in
  let inst = T.Instrument.optimal_configuration cat ~base:Config.empty w in
  Printf.printf "-- base configuration (no structures)\n";
  let base = Relax_engine.Validate.run db Config.empty w in
  Fmt.pr "%a@." Relax_engine.Validate.pp_report base;
  Printf.printf "\n-- optimal configuration (%d structures)\n"
    (Config.cardinal inst.optimal);
  let opt = Relax_engine.Validate.run db inst.optimal w in
  Fmt.pr "%a@." Relax_engine.Validate.pp_report opt;
  Printf.printf
    "\nestimated improvement %.1f%%, measured improvement %.1f%%; winner \
     preserved: %b\n"
    (100.0 *. (1.0 -. (opt.estimated_total /. base.estimated_total)))
    (100.0 *. (1.0 -. (opt.measured_total /. base.measured_total)))
    (Relax_engine.Validate.same_winner db Config.empty inst.optimal w)

(* ------------------------------------------------------------------ *)
(* Ablation: the design choices DESIGN.md calls out                    *)
(* ------------------------------------------------------------------ *)

let ablation () =
  section "Ablation: search heuristics and §3.5 variants"
    "the penalty heuristic should beat cost-greedy, space-greedy and \
     random transformation choice under a tight budget; shrinking and \
     multi-transformation speed convergence but may cost quality \
     (exactly the trade-offs §3.5 predicts)";
  let cat = Lazy.force tpch_cat in
  let w = W.Tpch.workload_subset [ 1; 3; 5; 6; 10; 12; 14; 15 ] in
  let budget = db_bytes cat *. 1.6 in
  let run label opts_patch =
    let base =
      {
        (T.Tuner.default_options ~mode:T.Tuner.Indexes_only
           ~space_budget:budget ())
        with
        max_iterations = 250;
      }
    in
    let t0 = now () in
    let r = T.Tuner.tune cat w (opts_patch base) in
    Printf.printf "%-28s %9.1f%% %10.1f %9d %8.2fs\n" label r.improvement
      r.recommended_cost
      (Config.cardinal r.recommended)
      (now () -. t0)
  in
  Printf.printf "%-28s %10s %10s %9s %9s\n" "variant" "impr" "cost" "#structs"
    "time";
  run "penalty (paper, default)" (fun o -> o);
  run "cost-greedy selection" (fun o -> { o with selection = T.Search.Cost_greedy });
  run "space-greedy selection" (fun o -> { o with selection = T.Search.Space_greedy });
  run "random selection (seed 1)" (fun o -> { o with selection = T.Search.Random 1 });
  run "random selection (seed 2)" (fun o -> { o with selection = T.Search.Random 2 });
  run "3 transforms / iteration" (fun o -> { o with transforms_per_iteration = 3 });
  run "shrink configurations" (fun o -> { o with shrink_configurations = true });
  run "shrink + 3 transforms" (fun o ->
      { o with shrink_configurations = true; transforms_per_iteration = 3 })

(* ------------------------------------------------------------------ *)
(* Parallel search: jobs sweep                                         *)
(* ------------------------------------------------------------------ *)

(* Node-expansion throughput of the relaxation search at jobs = 1/2/4/8,
   on the big substrate (SF-1 statistics, 104 generated statements).  The
   tuning output must be identical across the sweep (the determinism
   guarantee); the results — wall clock, per-run GC pressure, per-domain
   busy time and the host shape that makes the numbers interpretable —
   land in BENCH_parallel.json. *)
let parallel_sweep () =
  Printf.printf "\n-- parallel search: jobs sweep (substrate SF-1, 104 stmts) --\n";
  let cat = W.Substrate.catalog ~sf:1.0 () in
  let w = W.Substrate.pool ~sf:1.0 () in
  let budget = db_bytes cat *. 1.3 in
  let tune_with ?(iters = 60) jobs =
    let opts =
      {
        (T.Tuner.default_options ~mode:T.Tuner.Indexes_only
           ~space_budget:budget ())
        with
        max_iterations = iters;
        jobs;
      }
    in
    let obs = Relax_obs.Recorder.create () in
    let g0 = Gc.quick_stat () in
    let t0 = now () in
    let r = T.Tuner.tune ~obs cat w opts in
    let elapsed = now () -. t0 in
    let g1 = Gc.quick_stat () in
    let gc =
      let open Relax_obs.Json in
      Obj
        [
          ("minor_words", Float (g1.minor_words -. g0.minor_words));
          ("major_words", Float (g1.major_words -. g0.major_words));
          ("promoted_words", Float (g1.promoted_words -. g0.promoted_words));
          ( "minor_collections",
            Int (g1.minor_collections - g0.minor_collections) );
          ( "major_collections",
            Int (g1.major_collections - g0.major_collections) );
        ]
    in
    (r, elapsed, Relax_obs.Recorder.snapshot obs, gc)
  in
  (* warmup: fill the catalog memos and fault in the code paths so the
     timed runs all start from the same state *)
  ignore (tune_with ~iters:8 1);
  let requested = max 1 (effective_jobs ()) in
  let sweep =
    List.sort_uniq Int.compare (1 :: 2 :: 4 :: 8 :: [ requested ])
  in
  let runs = List.map (fun j -> (j, tune_with j)) sweep in
  let r1, e1, m1, _ = List.assoc 1 runs in
  let fp (r : T.Tuner.result) = Config.fingerprint r.recommended in
  let identical =
    List.for_all
      (fun ( _,
             ((r, _, m, _) :
               T.Tuner.result * float * Relax_obs.Metrics.snapshot * _) ) ->
        fp r = fp r1
        && r.recommended_cost = r1.recommended_cost
        && r.frontier = r1.frontier
        && m.what_if_calls = m1.what_if_calls
        && m.cache_hits = m1.cache_hits
        && m.plans_reoptimized = m1.plans_reoptimized
        && m.plans_patched = m1.plans_patched
        && m.shortcut_aborts = m1.shortcut_aborts
        && m.iterations = m1.iterations
        && m.configurations_evaluated = m1.configurations_evaluated)
      runs
  in
  Printf.printf "%-6s %10s %14s %16s %10s\n" "jobs" "time" "configs eval"
    "configs/s" "speedup";
  List.iter
    (fun (j, (_, e, (m : Relax_obs.Metrics.snapshot), _)) ->
      Printf.printf "%-6d %9.2fs %14d %16.1f %9.2fx\n" j e
        m.configurations_evaluated
        (float_of_int m.configurations_evaluated /. Float.max 1e-9 e)
        (e1 /. Float.max 1e-9 e))
    runs;
  Printf.printf "identical tuning output across jobs: %b\n" identical;
  (* per-domain busy milliseconds, recovered from the pool.domainN.busy_ms
     named counters the search records at shutdown *)
  let domain_busy_ms (m : Relax_obs.Metrics.snapshot) =
    List.filter_map
      (fun (k, v) ->
        match String.split_on_char '.' k with
        | [ "pool"; dom; "busy_ms" ]
          when String.length dom > 6 && String.sub dom 0 6 = "domain" ->
          Option.map
            (fun i -> (i, v))
            (int_of_string_opt (String.sub dom 6 (String.length dom - 6)))
        | _ -> None)
      m.named_counters
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    |> List.map snd
  in
  let json =
    let open Relax_obs.Json in
    Obj
      [
        ("bench", String "parallel_jobs_sweep");
        ("workload", String "substrate sf=1 pool 26x4 (104 stmts)");
        ("budget_bytes", Float budget);
        ("identical_results", Bool identical);
        (* environment self-description: a 1-core container showing no
           speedup is expected, and the numbers below say so *)
        ("host", host_json ());
        ("effective_jobs", Int requested);
        ( "runs",
          List
            (List.map
               (fun ( j,
                      ((r, e, m, gc) :
                        T.Tuner.result
                        * float
                        * Relax_obs.Metrics.snapshot
                        * Relax_obs.Json.t) ) ->
                 Obj
                   [
                     ("jobs", Int j);
                     ("elapsed_s", Float e);
                     ("configurations_evaluated", Int m.configurations_evaluated);
                     ( "throughput_configs_per_s",
                       Float
                         (float_of_int m.configurations_evaluated
                         /. Float.max 1e-9 e) );
                     ("speedup_vs_jobs1", Float (e1 /. Float.max 1e-9 e));
                     ("recommended_cost", Float r.recommended_cost);
                     ("recommended_fingerprint", String (fp r));
                     ("what_if_calls", Int m.what_if_calls);
                     ("cache_hits", Int m.cache_hits);
                     ("gc", gc);
                     ( "busy_ms",
                       List (List.map (fun v -> Int v) (domain_busy_ms m)) );
                     ( "latency",
                       Obj
                         (List.map
                            (fun (k, h) ->
                              (k, Relax_obs.Histogram.to_json h))
                            m.latency) );
                   ])
               runs) );
      ]
  in
  (try
     Out_channel.with_open_bin "BENCH_parallel.json" (fun oc ->
         Out_channel.output_string oc (Relax_obs.Json.to_string json);
         Out_channel.output_char oc '\n');
     Printf.printf "jobs sweep written to BENCH_parallel.json\n"
   with Sys_error msg ->
     Printf.eprintf "cannot write BENCH_parallel.json: %s\n" msg);
  ignore r1

(* ------------------------------------------------------------------ *)
(* Frugal costing: what-if budget sweep                                 *)
(* ------------------------------------------------------------------ *)

(* overridden by --whatif-budget N *)
let whatif_budget_flag = ref 384

(* The frugal costing tier on a generated 100+-statement workload: the
   budgeted run must land within epsilon of the unlimited run's
   recommended cost while spending several times fewer what-if optimizer
   calls.  The results land in BENCH_frugal.json, diffed by perfdiff in
   CI with what_if_calls as a hard gate. *)
let frugal_sweep () =
  Printf.printf "\n-- frugal costing: what-if budget sweep --\n";
  let schema = W.Bench_db.tpch_schema ~scale:tpch_scale () in
  (* 104 statements from 13 templates, re-parameterized as production
     workloads repeat (the compress_bench recipe, distinct seed) *)
  let base = W.Generator.workload ~seed:900 schema ~n:13 in
  let rng = Relax_catalog.Rng.create 901 in
  let w =
    List.concat_map
      (fun rep ->
        List.map
          (fun (e : Query.entry) ->
            { e with qid = Printf.sprintf "%s-r%d" e.qid rep })
          (if rep = 0 then base else W.Generator.reparameterize schema rng base))
      (List.init 8 Fun.id)
  in
  let cat = schema.catalog in
  let budget = db_bytes cat *. 1.3 in
  let call_budget = !whatif_budget_flag in
  Printf.printf "workload: %d generated statements, whatif budget %d\n"
    (List.length w) call_budget;
  let tune_with label whatif_budget =
    let checker =
      if !validate_flag then
        Some
          (Relax_check.Checker.create cat ~workload:w ~protected:Config.empty
             ())
      else None
    in
    let opts =
      {
        (T.Tuner.default_options ~mode:T.Tuner.Indexes_only
           ~space_budget:budget ())
        with
        (* a long tuning session: exact costing pays optimizer calls per
           iteration, frugal costing plateaus at the budget — the regime
           the 100+-statement north star lives in *)
        max_iterations = 800;
        jobs = effective_jobs ();
        whatif_budget;
        on_iteration = Option.map Relax_check.Checker.hook checker;
      }
    in
    let obs = Relax_obs.Recorder.create () in
    let t0 = now () in
    let r = T.Tuner.tune ~obs cat w opts in
    let elapsed = now () -. t0 in
    (match checker with
    | None -> ()
    | Some c ->
      let rep = Relax_check.Checker.report c in
      check_iterations := !check_iterations + rep.iterations_checked;
      check_violations := !check_violations + List.length rep.violations;
      if rep.violations <> [] then
        Printf.printf "  !! differential check (%s): %s\n" label
          (Fmt.str "%a" Relax_check.Checker.pp_report rep));
    (label, r, elapsed, Relax_obs.Recorder.snapshot obs)
  in
  let exact = tune_with "exact" None in
  let frugal = tune_with "frugal" (Some call_budget) in
  let named name (m : Relax_obs.Metrics.snapshot) =
    Option.value ~default:0 (List.assoc_opt name m.named_counters)
  in
  Printf.printf "%-8s %10s %14s %12s %10s %10s %10s\n" "run" "time"
    "whatif calls" "cost" "accepts" "rejects" "spent";
  List.iter
    (fun (label, (r : T.Tuner.result), e, (m : Relax_obs.Metrics.snapshot)) ->
      Printf.printf "%-8s %9.2fs %14d %12.1f %10d %10d %10d\n" label e
        m.what_if_calls r.recommended_cost
        (named "whatif.bound_accepts" m)
        (named "whatif.bound_rejects" m)
        (named "whatif.budget_spent" m))
    [ exact; frugal ];
  let _, re, _, me = exact and _, rf, _, mf = frugal in
  let ratio =
    float_of_int me.what_if_calls /. float_of_int (max 1 mf.what_if_calls)
  in
  let cost_gap =
    Float.abs (rf.recommended_cost -. re.recommended_cost)
    /. Float.max 1e-9 re.recommended_cost
  in
  let eps_equal = cost_gap <= 0.01 in
  Printf.printf
    "what-if call reduction: %.1fx   recommended-cost gap: %.4f%% \
     (epsilon-equal: %b)\n"
    ratio (100.0 *. cost_gap) eps_equal;
  let json =
    let open Relax_obs.Json in
    let run_json (label, (r : T.Tuner.result), e, (m : Relax_obs.Metrics.snapshot)) =
      Obj
        [
          ("label", String label);
          ("elapsed_s", Float e);
          ("configurations_evaluated", Int m.configurations_evaluated);
          ( "throughput_configs_per_s",
            Float
              (float_of_int m.configurations_evaluated /. Float.max 1e-9 e) );
          ("what_if_calls", Int m.what_if_calls);
          ("cache_hits", Int m.cache_hits);
          ("plans_reoptimized", Int m.plans_reoptimized);
          ("plans_patched", Int m.plans_patched);
          ("bound_accepts", Int (named "whatif.bound_accepts" m));
          ("bound_rejects", Int (named "whatif.bound_rejects" m));
          ("budget_spent", Int (named "whatif.budget_spent" m));
          ("bound_costed", Int (named "whatif.bound_costed" m));
          ("point_exact", Int (named "whatif.point_exact" m));
          ("endgame_spent", Int (named "whatif.endgame_spent" m));
          ("recommended_cost", Float r.recommended_cost);
          ("recommended_fingerprint", String (Config.fingerprint r.recommended));
          ("improvement_pct", Float r.improvement);
        ]
    in
    Obj
      [
        ("bench", String "frugal_whatif_budget");
        ("host", host_json ());
        ( "workload",
          String
            (Printf.sprintf "generated tpch-like, %d statements"
               (List.length w)) );
        ("budget_bytes", Float budget);
        ("whatif_budget", Int call_budget);
        ("call_reduction", Float ratio);
        ("recommended_cost_gap", Float cost_gap);
        ("epsilon_equal_cost", Bool eps_equal);
        ("runs", List [ run_json exact; run_json frugal ]);
      ]
  in
  try
    Out_channel.with_open_bin "BENCH_frugal.json" (fun oc ->
        Out_channel.output_string oc (Relax_obs.Json.to_string json);
        Out_channel.output_char oc '\n');
    Printf.printf "frugality sweep written to BENCH_frugal.json\n"
  with Sys_error msg -> Printf.eprintf "cannot write BENCH_frugal.json: %s\n" msg

(* ------------------------------------------------------------------ *)
(* Continuous tuning: stream replay                                    *)
(* ------------------------------------------------------------------ *)

(* The daemon replaying the 104-statement generated workload (the
   frugal_sweep recipe) as a statement stream: warm incremental re-tunes
   must spend measurably fewer what-if calls than cold from-scratch
   re-tunes over the same stream, the converged configuration's window
   cost must be epsilon-equal to a from-scratch tune of the final
   window, and an injected cost-drift fault must trigger exactly one
   auto-rollback that restores the previous deployment byte-identically.
   The results land in BENCH_stream.json. *)
let stream_bench () =
  Printf.printf "\n-- continuous tuning: stream replay --\n";
  let schema = W.Bench_db.tpch_schema ~scale:tpch_scale () in
  let base = W.Generator.workload ~seed:900 schema ~n:13 in
  let rng = Relax_catalog.Rng.create 901 in
  let stream =
    List.concat_map
      (fun rep ->
        List.map
          (fun (e : Query.entry) ->
            { e with qid = Printf.sprintf "%s-r%d" e.qid rep })
          (if rep = 0 then base else W.Generator.reparameterize schema rng base))
      (List.init 8 Fun.id)
  in
  let cat = schema.catalog in
  let budget = db_bytes cat *. 1.3 in
  let opts ~warm ~inject =
    {
      (D.Daemon.default_options ~space_budget:budget ()) with
      mode = T.Tuner.Indexes_only;
      retune_every = 26;
      min_statements = 13;
      (* no rotation: the convergence comparison below needs the final
         window to be exactly the one the last re-tune saw (rotation
         refreshes representatives right after the tune, which would
         shift the goalposts); rotation is exercised by the daemon test
         suite and the CI smoke run *)
      rotate_every = 0;
      max_iterations = 300;
      jobs = effective_jobs ();
      warm;
      inject_drift = inject;
    }
  in
  (* replay through the JSONL stream codec, exactly what relaxd reads *)
  let replay daemon =
    let trail = ref [] in
    List.iter
      (fun e ->
        match D.Stream.parse_line (D.Stream.line_of_entry e) with
        | Error msg -> failwith ("stream round-trip: " ^ msg)
        | Ok e -> (
          match D.Daemon.ingest daemon e with
          | None -> ()
          | Some r -> trail := (r, D.Daemon.deployed_json daemon) :: !trail))
      stream;
    (match D.Daemon.finalize daemon with
    | None -> ()
    | Some r -> trail := (r, D.Daemon.deployed_json daemon) :: !trail);
    List.rev !trail
  in
  let run label ~warm ~inject =
    let daemon = D.Daemon.create cat (opts ~warm ~inject) in
    let t0 = now () in
    let trail = replay daemon in
    (label, daemon, trail, now () -. t0)
  in
  let report_rejects label trail =
    List.iter
      (fun ((r : D.Daemon.retune), _) ->
        match r.action with
        | D.Daemon.Rejected reasons ->
          Printf.printf "  !! %s retune %d rejected: %s\n" label r.ordinal
            (String.concat "; " reasons)
        | _ -> ())
      trail
  in
  let _, warm_d, warm_trail, warm_t = run "warm" ~warm:true ~inject:None in
  report_rejects "warm" warm_trail;
  let _, _, cold_trail, cold_t = run "cold" ~warm:false ~inject:None in
  let calls trail =
    List.map (fun ((r : D.Daemon.retune), _) -> r.what_if_calls) trail
  in
  let warm_calls = calls warm_trail and cold_calls = calls cold_trail in
  let sum = List.fold_left ( + ) 0 in
  let call_ratio =
    float_of_int (sum cold_calls) /. float_of_int (max 1 (sum warm_calls))
  in
  Printf.printf "retunes: %d   warm calls per retune: [%s]   cold: [%s]\n"
    (List.length warm_trail)
    (String.concat ";" (List.map string_of_int warm_calls))
    (String.concat ";" (List.map string_of_int cold_calls));
  Printf.printf "warm spends %.1fx fewer what-if calls (%.2fs vs %.2fs)\n"
    call_ratio warm_t cold_t;
  (* convergence: the deployment's final-window cost vs a from-scratch
     tune of the same window *)
  let final_window = D.Daemon.window_workload warm_d in
  let scratch =
    T.Tuner.tune cat final_window
      {
        (T.Tuner.default_options ~mode:T.Tuner.Indexes_only
           ~space_budget:budget ())
        with
        max_iterations = 300;
        jobs = effective_jobs ();
      }
  in
  let daemon_cost =
    T.Tuner.workload_cost cat (D.Daemon.deployed warm_d) final_window
  in
  let cost_gap =
    Float.abs (daemon_cost -. scratch.recommended_cost)
    /. Float.max 1e-9 scratch.recommended_cost
  in
  let eps_equal = cost_gap <= 0.01 in
  Printf.printf
    "final window: daemon cost %.1f vs from-scratch %.1f, gap %.4f%% \
     (epsilon-equal: %b)\n"
    daemon_cost scratch.recommended_cost (100.0 *. cost_gap) eps_equal;
  (* fault injection: drift at retune 3 must fire exactly one rollback
     restoring the pre-deploy JSON byte-for-byte *)
  let fault_d = D.Daemon.create cat (opts ~warm:true ~inject:(Some (3, 25.0))) in
  let initial_json = D.Daemon.deployed_json fault_d in
  let fault_trail = replay fault_d in
  let restored_identical =
    let pre_deploy = ref initial_json and prev = ref initial_json in
    let ok = ref false in
    List.iter
      (fun ((r : D.Daemon.retune), json_after) ->
        (match r.action with
        | D.Daemon.Deployed _ -> pre_deploy := !prev
        | D.Daemon.Rolled_back _ -> ok := String.equal json_after !pre_deploy
        | D.Daemon.Steady | D.Daemon.Rejected _ -> ());
        prev := json_after)
      fault_trail;
    !ok
  in
  let rollback_count = D.Daemon.rollbacks fault_d in
  Printf.printf
    "injected drift at retune 3: %d rollback(s), restored byte-identical: %b\n"
    rollback_count restored_identical;
  let json =
    let open Relax_obs.Json in
    let cycles trail =
      List
        (List.map
           (fun ((r : D.Daemon.retune), _) ->
             Obj
               [
                 ("ordinal", Int r.ordinal);
                 ( "action",
                   String
                     (match r.action with
                     | D.Daemon.Steady -> "steady"
                     | D.Daemon.Deployed _ -> "deploy"
                     | D.Daemon.Rejected _ -> "reject"
                     | D.Daemon.Rolled_back _ -> "rollback") );
                 ("what_if_calls", Int r.what_if_calls);
                 ("cache_hits", Int r.cache_hits);
                 ("elapsed_s", Float r.elapsed_s);
               ])
           trail)
    in
    Obj
      [
        ("bench", String "daemon_stream_replay");
        ("host", host_json ());
        ( "workload",
          String
            (Printf.sprintf "generated tpch-like stream, %d statements"
               (List.length stream)) );
        ("budget_bytes", Float budget);
        ("warm_calls", Int (sum warm_calls));
        ("cold_calls", Int (sum cold_calls));
        ("call_reduction", Float call_ratio);
        ("warm_elapsed_s", Float warm_t);
        ("cold_elapsed_s", Float cold_t);
        ("daemon_final_window_cost", Float daemon_cost);
        ("scratch_final_window_cost", Float scratch.recommended_cost);
        ("final_window_cost_gap", Float cost_gap);
        ("epsilon_equal_cost", Bool eps_equal);
        ("injected_rollbacks", Int rollback_count);
        ("rollback_restored_identical", Bool restored_identical);
        ("warm_cycles", cycles warm_trail);
        ("cold_cycles", cycles cold_trail);
        ("fault_cycles", cycles fault_trail);
      ]
  in
  try
    Out_channel.with_open_bin "BENCH_stream.json" (fun oc ->
        Out_channel.output_string oc (Relax_obs.Json.to_string json);
        Out_channel.output_char oc '\n');
    Printf.printf "stream replay written to BENCH_stream.json\n"
  with Sys_error msg -> Printf.eprintf "cannot write BENCH_stream.json: %s\n" msg

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  section "Micro-benchmarks (Bechamel)"
    "per-operation latencies of the pieces the search loop multiplies: \
     optimizer calls must be milliseconds, access-path costing and size \
     estimation micro-seconds";
  let open Bechamel in
  let cat = Lazy.force tpch_cat in
  let q3 =
    match (List.nth (W.Tpch.workload ()) 2).stmt with
    | Query.Select q -> q
    | _ -> assert false
  in
  let q6 =
    match (List.nth (W.Tpch.workload ()) 5).stmt with
    | Query.Select q -> q
    | _ -> assert false
  in
  let idx = Relax_physical.Index.on "lineitem" [ "l_shipdate" ] ~suffix:[ "l_extendedprice" ] in
  let config = Config.of_indexes [ idx ] in
  let env = O.Env.make cat config in
  let request =
    O.Request.make ~rel:"lineitem"
      ~ranges:
        [
          Relax_sql.Predicate.range
            ~lo:(Relax_sql.Predicate.bound (Relax_sql.Types.VInt 9000))
            (Relax_sql.Types.Column.make "lineitem" "l_shipdate");
        ]
      ~cols:
        (Relax_sql.Types.Column_set.singleton
           (Relax_sql.Types.Column.make "lineitem" "l_extendedprice"))
      ()
  in
  let tests =
    [
      Test.make ~name:"optimize Q3 (3-way join)" (Staged.stage (fun () ->
          ignore (O.Optimizer.optimize cat config q3)));
      Test.make ~name:"optimize Q6 (single table)" (Staged.stage (fun () ->
          ignore (O.Optimizer.optimize cat config q6)));
      Test.make ~name:"access-path selection" (Staged.stage (fun () ->
          ignore (O.Access_path.best env request)));
      Test.make ~name:"index size estimate" (Staged.stage (fun () ->
          ignore (Config.index_bytes cat config idx)));
    ]
  in
  List.iter
    (fun test ->
      let raw_results =
        Benchmark.all
          (Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ())
          Toolkit.Instance.[ monotonic_clock ]
          test
      in
      Hashtbl.iter
        (fun name raw ->
          let stats =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| Measure.run |])
              Toolkit.Instance.monotonic_clock raw
          in
          match Analyze.OLS.estimates stats with
          | Some [ est ] -> Printf.printf "%-32s %12.1f ns/run\n" name est
          | _ -> ignore name)
        raw_results)
    tests;
  parallel_sweep ();
  (* one `bench micro --json` run refreshes both committed baselines *)
  frugal_sweep ()

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("compress", compress_bench);
    ("frugal", frugal_sweep);
    ("stream", stream_bench);
    ("validate", validate);
    ("ablation", ablation);
    ("micro", micro);
  ]

(* Run one experiment under its own recorder so its metrics snapshot can be
   reported separately; every tuner call inside inherits the ambient
   recorder.  With --profile the recorder retains the span tree and
   counter samples, written per experiment as a Chrome trace. *)
let profile_path base name ~single =
  if single then base
  else
    Filename.remove_extension base ^ "." ^ name ^ Filename.extension base

let run_instrumented ~single name f =
  let profiling = !profile_flag <> None in
  let recorder = Relax_obs.Recorder.create ~profile:profiling () in
  let t0 = now () in
  Relax_obs.Recorder.with_ambient recorder f;
  let elapsed = now () -. t0 in
  (match !profile_flag with
  | None -> ()
  | Some base -> (
    let path = profile_path base name ~single in
    try
      Relax_obs.Chrome.write recorder path;
      Printf.printf "profile trace written to %s (open in ui.perfetto.dev)\n"
        path
    with Sys_error msg -> Printf.eprintf "cannot write %s: %s\n" path msg));
  (name, elapsed, Relax_obs.Recorder.snapshot recorder)

let results_json ~total_elapsed results =
  let open Relax_obs.Json in
  let aggregate =
    Relax_obs.Metrics.merge_all (List.map (fun (_, _, m) -> m) results)
  in
  Obj
    [
      ("total_elapsed_s", Float total_elapsed);
      ( "experiments",
        List
          (List.map
             (fun (name, elapsed, m) ->
               Obj
                 [
                   ("name", String name);
                   ("elapsed_s", Float elapsed);
                   ("metrics", Relax_obs.Metrics.to_json m);
                 ])
             results) );
      ("metrics", Relax_obs.Metrics.to_json aggregate);
    ]

let parse_log_level = function
  | "quiet" -> Ok None
  | "app" -> Ok (Some Logs.App)
  | "error" -> Ok (Some Logs.Error)
  | "warning" -> Ok (Some Logs.Warning)
  | "info" -> Ok (Some Logs.Info)
  | "debug" -> Ok (Some Logs.Debug)
  | s -> Error s

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Warning);
  (* SIGINT/SIGTERM unwind through every [Fun.protect] below, so partial
     bench output and trace sinks are flushed instead of dropped *)
  Relax_obs.Shutdown.install ();
  Relax_obs.Shutdown.protect @@ fun () ->
  (* peel off --json PATH / --json=PATH, --jobs N / --jobs=N and
     --log-level LEVEL *)
  let json_path = ref None in
  let set_jobs s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> jobs_flag := Some n
    | Some _ | None ->
      Printf.eprintf "--jobs expects a positive integer, got %s\n" s;
      exit 1
  in
  let set_whatif_budget s =
    match int_of_string_opt s with
    | Some n when n >= 0 -> whatif_budget_flag := n
    | Some _ | None ->
      Printf.eprintf "--whatif-budget expects a non-negative integer, got %s\n"
        s;
      exit 1
  in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--json" :: path :: rest ->
      json_path := Some path;
      parse acc rest
    | "--jobs" :: n :: rest ->
      set_jobs n;
      parse acc rest
    | "--validate" :: rest ->
      validate_flag := true;
      parse acc rest
    | "--whatif-budget" :: n :: rest ->
      set_whatif_budget n;
      parse acc rest
    | arg :: rest
      when String.length arg > 16 && String.sub arg 0 16 = "--whatif-budget="
      ->
      set_whatif_budget (String.sub arg 16 (String.length arg - 16));
      parse acc rest
    | "--profile" :: rest ->
      profile_flag := Some "bench-profile.json";
      parse acc rest
    | arg :: rest
      when String.length arg > 10 && String.sub arg 0 10 = "--profile=" ->
      profile_flag := Some (String.sub arg 10 (String.length arg - 10));
      parse acc rest
    | arg :: rest when String.length arg > 7 && String.sub arg 0 7 = "--jobs="
      ->
      set_jobs (String.sub arg 7 (String.length arg - 7));
      parse acc rest
    | "--log-level" :: level :: rest -> (
      match parse_log_level level with
      | Ok l ->
        Logs.set_level l;
        parse acc rest
      | Error s ->
        Printf.eprintf "unknown log level %s\n" s;
        exit 1)
    | arg :: rest when String.length arg > 7 && String.sub arg 0 7 = "--json="
      ->
      json_path := Some (String.sub arg 7 (String.length arg - 7));
      parse acc rest
    | arg :: rest -> parse (arg :: acc) rest
  in
  let args = parse [] args in
  (* fail fast on an unwritable --json path, not after the experiments *)
  (match !json_path with
  | None -> ()
  | Some path -> (
    try Out_channel.with_open_bin path (fun _ -> ())
    with Sys_error msg ->
      Printf.eprintf "cannot write %s: %s\n" path msg;
      exit 1));
  let t0 = now () in
  let to_run =
    match args with
    | [] | [ "all" ] -> experiments
    | names ->
      List.map
        (fun n ->
          match List.assoc_opt n experiments with
          | Some f -> (n, f)
          | None ->
            Printf.eprintf "unknown experiment %s; available: %s\n" n
              (String.concat " " (List.map fst experiments));
            exit 1)
        names
  in
  let single = List.length to_run = 1 in
  let results = List.map (fun (n, f) -> run_instrumented ~single n f) to_run in
  let total = now () -. t0 in
  (match !json_path with
  | None -> ()
  | Some path -> (
    try
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (Relax_obs.Json.to_string
               (results_json ~total_elapsed:total results));
          Out_channel.output_char oc '\n');
      Printf.printf "results written to %s\n" path
    with Sys_error msg -> Printf.eprintf "cannot write %s: %s\n" path msg));
  Printf.printf "\nall experiments completed in %.1f s\n" total;
  if !validate_flag then begin
    Printf.printf
      "differential check: %d iterations checked across all runs, %d \
       violation(s)\n"
      !check_iterations !check_violations;
    if !check_violations > 0 then exit 1
  end
